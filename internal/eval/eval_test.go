package eval_test

import (
	"strings"
	"testing"
	"time"

	"rvgo/internal/eval"
)

// smallConfig keeps the grid tiny for CI.
func smallConfig() eval.Config {
	cfg := eval.DefaultConfig()
	cfg.Scale = 0.02
	cfg.Timeout = 30 * time.Second
	cfg.Benchmarks = []string{"avrora", "luindex"}
	cfg.Properties = []string{"HasNext", "UnsafeIter"}
	return cfg
}

func TestRunGrid(t *testing.T) {
	res, err := eval.Run(smallConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, bench := range res.Config.Benchmarks {
		base, ok := res.Base[bench]
		if !ok || base.RunSec <= 0 {
			t.Fatalf("%s: missing baseline", bench)
		}
		for _, prop := range res.Config.Properties {
			for _, sys := range res.Config.Systems {
				cell, ok := res.Cells[bench][prop][sys]
				if !ok {
					t.Fatalf("missing cell %s/%s/%s", bench, prop, sys)
				}
				if cell.TimedOut {
					t.Fatalf("%s/%s/%s timed out at tiny scale", bench, prop, sys)
				}
				if cell.RunSec <= 0 {
					t.Fatalf("%s/%s/%s: no runtime measured", bench, prop, sys)
				}
			}
			rv := res.Cells[bench][prop][eval.SysRV]
			if bench == "avrora" && rv.Stats.Events == 0 {
				t.Fatalf("%s/%s: RV saw no events", bench, prop)
			}
		}
		if _, ok := res.All[bench]; !ok {
			t.Fatalf("%s: missing ALL cell", bench)
		}
	}
	// avrora produces monitors; RV must flag/collect some of them.
	rv := res.Cells["avrora"]["UnsafeIter"][eval.SysRV]
	if rv.Stats.Created == 0 || rv.Stats.Collected == 0 {
		t.Fatalf("avrora UnsafeIter RV stats: %+v", rv.Stats)
	}
	// JavaMOP mode must retain at least as many monitors as RV.
	mop := res.Cells["avrora"]["UnsafeIter"][eval.SysMOP]
	if mop.Stats.Live < rv.Stats.Live {
		t.Fatalf("MOP retained %d < RV %d", mop.Stats.Live, rv.Stats.Live)
	}
}

func TestTables(t *testing.T) {
	res, err := eval.Run(smallConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	var a, b, c strings.Builder
	res.Fig9A(&a)
	res.Fig9B(&b)
	res.Fig10(&c)
	for name, s := range map[string]string{"fig9a": a.String(), "fig9b": b.String(), "fig10": c.String()} {
		for _, bench := range res.Config.Benchmarks {
			if !strings.Contains(s, bench) {
				t.Errorf("%s table missing row %q", name, bench)
			}
		}
	}
	if !strings.Contains(a.String(), "ORIG") || !strings.Contains(c.String(), "FM") {
		t.Error("table headers malformed")
	}
}

func TestRunCellUnknownBenchmark(t *testing.T) {
	cfg := smallConfig()
	if _, err := eval.RunBaseline("nosuch", cfg.Scale); err == nil {
		t.Fatal("unknown benchmark must error")
	}
}

// TestRunCellSharded: the sharded backend runs a cell end to end and
// reports sane counters. RunCell barriers the runtime before every object
// death (via the heap free hook), so this exercises the trace-faithful
// path; exact equivalence with the sequential engine is covered by
// internal/shard's oracle tests.
func TestRunCellSharded(t *testing.T) {
	cfg := smallConfig()
	cfg.Shards = 4
	base, err := eval.RunBaseline("avrora", cfg.Scale)
	if err != nil {
		t.Fatal(err)
	}
	cell, err := eval.RunCell("avrora", "UnsafeIter", eval.SysRV, base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cell.Stats.Events == 0 || cell.Stats.Created == 0 {
		t.Fatalf("sharded cell saw no monitoring activity: %+v", cell.Stats)
	}
	if cell.Stats.Collected == 0 {
		t.Fatalf("sharded cell collected nothing: %+v", cell.Stats)
	}
}
