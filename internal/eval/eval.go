// Package eval is the experiment harness regenerating the paper's Figure
// 9(A) (percent runtime overhead), Figure 9(B) (peak memory) and Figure 10
// (monitoring statistics) over the synthetic DaCapo substrate, for the
// three systems compared: Tracematches (TM), JavaMOP (MOP) and RV.
package eval

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"rvgo/internal/cliutil"
	"rvgo/internal/cluster"
	"rvgo/internal/dacapo"
	"rvgo/internal/heap"
	"rvgo/internal/monitor"
	"rvgo/internal/props"
	"rvgo/internal/remote"
	"rvgo/internal/tracematches"
)

// System identifies a monitoring system under test.
type System string

// The compared systems, in the paper's column order.
const (
	SysTM  System = "TM"
	SysMOP System = "MOP"
	SysRV  System = "RV"
)

// Config controls an evaluation run.
type Config struct {
	Scale      float64       // workload scale (1.0 ≈ paper/50)
	Timeout    time.Duration // per-cell budget; exceeded = the paper's "∞"
	Benchmarks []string
	Properties []string
	Systems    []System
	// Shards selects the monitoring backend for the RV and MOP cells:
	// 0 or 1 is the sequential engine, >1 the sharded runtime
	// (internal/shard) with that many workers.
	Shards int
	// Remote, when non-empty, is the address of an rvserve monitoring
	// server: the RV and MOP cells run over the network through the
	// client package, one session per cell, with object deaths forwarded
	// as protocol-level free messages. Shards then selects the backend on
	// the server side, per session.
	Remote string
	// Nodes, when non-empty, lists the rvserve node addresses of a
	// monitoring cluster: the RV and MOP cells run as one logical session
	// each, spread across the nodes by pivot hash (rvgo.WithCluster's
	// backend). Mutually exclusive with Remote; Shards must stay 0 or 1 —
	// the cluster's per-node sessions are sequential.
	Nodes []string `json:",omitempty"`
	// Avoid applies the static creation-avoidance guards to every RV/MOP
	// cell (off by default): audit counts would-be-suppressed creations in
	// Stats.Avoided, enforce suppresses them. Supported on every backend
	// (the guards derive from the spec, so they cross the wire as a mode
	// byte); the profile-guided guards do not — those live in the -avoid
	// tier (RunAvoid), which replays a recorded trace sequentially.
	Avoid monitor.AvoidMode `json:",omitempty"`
}

// DefaultConfig returns the full Figure 9/10 grid at a CI-friendly scale.
func DefaultConfig() Config {
	return Config{
		Scale:      0.1,
		Timeout:    60 * time.Second,
		Benchmarks: dacapo.Benchmarks(),
		Properties: props.DaCapoProperties(),
		Systems:    []System{SysTM, SysMOP, SysRV},
	}
}

// Cell is one measurement. Creation and Avoid record the active creation
// strategy and guard mode of the RV/MOP backend that produced the cell,
// so archived grids are self-describing (a baseline from a guarded run
// cannot be mistaken for an unguarded one).
type Cell struct {
	TimedOut    bool
	RunSec      float64
	OverheadPct float64
	PeakMemMB   float64
	Creation    string        `json:",omitempty"` // creation strategy ("enable"; the grid never runs "full")
	Avoid       string        `json:",omitempty"` // creation-guard mode: off, audit, enforce
	Stats       monitor.Stats // RV/MOP counters (Figure 10)
	TMStats     tracematches.Stats
}

// Baseline is the unmonitored measurement of one benchmark.
type Baseline struct {
	RunSec    float64
	PeakMemMB float64
	Events    uint64 // instrumentation events the workload would emit
}

// Results holds a full grid.
type Results struct {
	Config Config
	Base   map[string]Baseline                   // by benchmark
	Cells  map[string]map[string]map[System]Cell // bench → prop → system
	All    map[string]Cell                       // RV monitoring all properties at once
	// Micro is the hot-path trajectory: per-event ns and allocation
	// counts (see RunMicro). Allocations are deterministic, so Compare
	// gates on them tightly; older archived baselines without the section
	// are simply not gated.
	Micro []MicroResult
	// Retro, when present, is the retroactive-monitoring tier: a
	// monitored workload recorded to the persistent trace store, replayed
	// at several worker counts, verified bit-identical to the online run
	// (see RunRetro; rvbench -retro produces and archives it).
	Retro *RetroResult `json:",omitempty"`
	// Metrics is the telemetry section: the engine's metrics registry
	// observed over a fixed churn workload (see RunMetricsReport). Counter
	// fields are deterministic and Compare gates on them exactly; latency
	// quantiles are reported only. Baselines archived before the section
	// existed are not gated.
	Metrics *MetricsReport `json:",omitempty"`
	// Cluster, when present, is the cluster comparison tier: the same
	// recorded workload monitored through a single remote session and a
	// pivot-hashed multi-node cluster session, verified to settle
	// identically (see RunCluster; rvbench -cluster produces it).
	Cluster *ClusterReport `json:",omitempty"`
	// Avoid, when present, is the creation-avoidance tier: one recorded
	// workload replayed under every guard configuration, with per-site
	// profile statistics and the suppression invariants verified against
	// the unguarded replay (see RunAvoid; rvbench -avoid produces it).
	Avoid *AvoidReport `json:",omitempty"`
}

// memSampler tracks peak heap usage on a fixed cadence.
type memSampler struct {
	peak uint64
}

func (s *memSampler) sample() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > s.peak {
		s.peak = ms.HeapAlloc
	}
}

func (s *memSampler) mb() float64 { return float64(s.peak) / (1 << 20) }

// runWorkload executes one profile with the given sinks attached and
// returns duration, peak memory and timeout status. settle, if non-nil,
// runs inside the timed region after the workload ends — asynchronous
// backends pass their Barrier so queued events count against the clock.
func runWorkload(bench string, scale float64, timeout time.Duration, attach func(rt *dacapo.Runtime) error, settle func()) (sec float64, peakMB float64, timedOut bool, err error) {
	p, ok := dacapo.Get(bench)
	if !ok {
		return 0, 0, false, fmt.Errorf("eval: unknown benchmark %q", bench)
	}
	rt := dacapo.NewRuntime()
	if attach != nil {
		if err := attach(rt); err != nil {
			return 0, 0, false, err
		}
	}
	sampler := &memSampler{}
	rt.AddSink(memSink(sampler))
	if timeout > 0 {
		rt.SetDeadline(time.Now().Add(timeout))
	}
	runtime.GC()
	sampler.sample()
	start := time.Now()
	werr := p.Run(rt, scale)
	if settle != nil {
		settle()
	}
	sec = time.Since(start).Seconds()
	sampler.sample()
	if werr == dacapo.ErrTimeout {
		return sec, sampler.mb(), true, nil
	}
	return sec, sampler.mb(), false, werr
}

// memSink samples memory every 4096 instrumentation events, at identical
// cadence for every system (and the baseline).
func memSink(s *memSampler) dacapo.Sink {
	n := 0
	return func(dacapo.Event) {
		n++
		if n&0xFFF == 0 {
			s.sample()
		}
	}
}

// RunBaseline measures the unmonitored workload. A discarded warmup run
// precedes the measurement so the baseline is not penalized for cold
// caches relative to the monitored runs that follow it.
func RunBaseline(bench string, scale float64) (Baseline, error) {
	if _, _, _, err := runWorkload(bench, scale, 0, nil, nil); err != nil {
		return Baseline{}, err
	}
	events := uint64(0)
	sec, mem, _, err := runWorkload(bench, scale, 0, func(rt *dacapo.Runtime) error {
		rt.AddSink(func(dacapo.Event) { events++ })
		return nil
	}, nil)
	if err != nil {
		return Baseline{}, err
	}
	// The counting sink above costs a closure call per event, the same
	// dispatch cost every monitored system also pays on top of it.
	return Baseline{RunSec: sec, PeakMemMB: mem, Events: events}, nil
}

// newEngine builds the RV/MOP monitoring backend: the sequential engine,
// the sharded runtime when cfg.Shards > 1, a remote session against
// cfg.Remote when set, or a pivot-hashed cluster session across cfg.Nodes
// when set.
func newEngine(spec *monitor.Spec, prop string, gc monitor.GCPolicy, cfg Config) (monitor.Runtime, error) {
	shards := cfg.Shards
	if shards == 0 {
		shards = 1
	}
	if len(cfg.Nodes) > 0 {
		return cluster.Open(cluster.Options{
			Prop:     prop,
			GC:       gc,
			Creation: monitor.CreateEnable,
			Avoid:    cfg.Avoid,
			Nodes:    cfg.Nodes,
		})
	}
	if cfg.Remote != "" {
		return remote.Dial(cfg.Remote, remote.Options{
			Prop:     prop,
			GC:       gc,
			Creation: monitor.CreateEnable,
			Avoid:    cfg.Avoid,
			Shards:   shards,
		})
	}
	opts := monitor.Options{GC: gc, Creation: monitor.CreateEnable, Avoid: cfg.Avoid}
	return cliutil.NewRuntime(spec, opts, shards)
}

// sessionErr surfaces a remote backend's sticky session error. The
// Runtime methods cannot return errors, so a connection lost mid-cell
// degrades them to no-ops; without this check the cell would report
// zeroed counters as a successful measurement.
func sessionErr(eng monitor.Runtime) error {
	if e, ok := eng.(interface{ Err() error }); ok {
		return e.Err()
	}
	return nil
}

// setFreeHook wires object deaths to the monitoring backends through the
// uniform Runtime.Free path: the hook runs just before the simulated heap
// marks the object dead, and each backend positions the death its own way
// — the sequential engine needs nothing (it observes liveness
// synchronously, so the hook is skipped entirely), the sharded runtime
// barriers its mailboxes, and a remote session sends a protocol-level
// free that the server barriers against.
func setFreeHook(rt *dacapo.Runtime, engines []monitor.Runtime, cfg Config) {
	if cfg.Remote == "" && len(cfg.Nodes) == 0 && cfg.Shards <= 1 {
		return
	}
	rt.Heap.SetFreeHook(func(o *heap.Object) {
		for _, eng := range engines {
			eng.Free(o)
		}
	})
}

// RunCell measures one benchmark × property × system combination.
func RunCell(bench, prop string, sys System, base Baseline, cfg Config) (Cell, error) {
	var cell Cell
	var eng monitor.Runtime
	var tme *tracematches.Engine

	attach := func(rt *dacapo.Runtime) error {
		spec, err := props.Build(prop)
		if err != nil {
			return err
		}
		switch sys {
		case SysRV, SysMOP:
			gc := monitor.GCCoenable
			if sys == SysMOP {
				gc = monitor.GCAllDead
			}
			eng, err = newEngine(spec, prop, gc, cfg)
			if err != nil {
				return err
			}
			cell.Creation, cell.Avoid = "enable", cfg.Avoid.String()
			sink, err := dacapo.Adapt(prop, eng)
			if err != nil {
				return err
			}
			rt.AddSink(sink)
			setFreeHook(rt, []monitor.Runtime{eng}, cfg)
		case SysTM:
			tme, err = tracematches.New(spec, tracematches.Options{})
			if err != nil {
				return err
			}
			sink, err := dacapo.Adapt(prop, tme)
			if err != nil {
				return err
			}
			rt.AddSink(sink)
		default:
			return fmt.Errorf("eval: unknown system %q", sys)
		}
		return nil
	}

	settle := func() {
		if eng != nil {
			eng.Barrier()
		}
	}
	sec, mem, timedOut, err := runWorkload(bench, cfg.Scale, cfg.Timeout, attach, settle)
	if err != nil {
		return cell, err
	}
	cell.RunSec = sec
	cell.PeakMemMB = mem
	cell.TimedOut = timedOut
	if base.RunSec > 0 {
		cell.OverheadPct = (sec - base.RunSec) / base.RunSec * 100
	}
	if eng != nil {
		eng.Flush()
		cell.Stats = eng.Stats()
		eng.Close()
		if err := sessionErr(eng); err != nil {
			return cell, err
		}
	}
	if tme != nil {
		tme.Sweep()
		cell.TMStats = tme.Stats()
	}
	return cell, nil
}

// RunAllProps measures RV monitoring every property simultaneously (the
// paper's ALL column, "not possible in other monitoring systems").
func RunAllProps(bench string, base Baseline, cfg Config) (Cell, error) {
	var cell Cell
	engines := make([]monitor.Runtime, 0, len(cfg.Properties))
	attach := func(rt *dacapo.Runtime) error {
		for _, prop := range cfg.Properties {
			spec, err := props.Build(prop)
			if err != nil {
				return err
			}
			eng, err := newEngine(spec, prop, monitor.GCCoenable, cfg)
			if err != nil {
				return err
			}
			sink, err := dacapo.Adapt(prop, eng)
			if err != nil {
				return err
			}
			rt.AddSink(sink)
			engines = append(engines, eng)
		}
		setFreeHook(rt, engines, cfg)
		return nil
	}
	settle := func() {
		for _, eng := range engines {
			eng.Barrier()
		}
	}
	sec, mem, timedOut, err := runWorkload(bench, cfg.Scale, cfg.Timeout, attach, settle)
	if err != nil {
		return cell, err
	}
	cell.RunSec = sec
	cell.PeakMemMB = mem
	cell.TimedOut = timedOut
	cell.Creation, cell.Avoid = "enable", cfg.Avoid.String()
	if base.RunSec > 0 {
		cell.OverheadPct = (sec - base.RunSec) / base.RunSec * 100
	}
	for _, eng := range engines {
		eng.Flush()
		st := eng.Stats()
		cell.Stats.Events += st.Events
		cell.Stats.Created += st.Created
		cell.Stats.Flagged += st.Flagged
		cell.Stats.Collected += st.Collected
		cell.Stats.GoalVerdicts += st.GoalVerdicts
		cell.Stats.Avoided += st.Avoided
		cell.Stats.Live += st.Live
		cell.Stats.PeakLive += st.PeakLive
		eng.Close()
		if err := sessionErr(eng); err != nil {
			return cell, err
		}
	}
	return cell, nil
}

// Run executes the full grid.
func Run(cfg Config, progress io.Writer) (*Results, error) {
	res := &Results{
		Config: cfg,
		Base:   map[string]Baseline{},
		Cells:  map[string]map[string]map[System]Cell{},
		All:    map[string]Cell{},
	}
	for _, bench := range cfg.Benchmarks {
		base, err := RunBaseline(bench, cfg.Scale)
		if err != nil {
			return nil, err
		}
		res.Base[bench] = base
		res.Cells[bench] = map[string]map[System]Cell{}
		for _, prop := range cfg.Properties {
			res.Cells[bench][prop] = map[System]Cell{}
			for _, sys := range cfg.Systems {
				cell, err := RunCell(bench, prop, sys, base, cfg)
				if err != nil {
					return nil, fmt.Errorf("%s/%s/%s: %w", bench, prop, sys, err)
				}
				res.Cells[bench][prop][sys] = cell
				if progress != nil {
					fmt.Fprintf(progress, "%-10s %-14s %-3s %7.2fs  ovh %8.1f%%  mem %7.1fMB%s\n",
						bench, prop, sys, cell.RunSec, cell.OverheadPct, cell.PeakMemMB, timeoutMark(cell))
				}
			}
		}
		all, err := RunAllProps(bench, base, cfg)
		if err != nil {
			return nil, err
		}
		res.All[bench] = all
		if progress != nil {
			fmt.Fprintf(progress, "%-10s %-14s %-3s %7.2fs  ovh %8.1f%%  mem %7.1fMB%s\n",
				bench, "ALL", "RV", all.RunSec, all.OverheadPct, all.PeakMemMB, timeoutMark(all))
		}
	}
	micro, err := RunMicro()
	if err != nil {
		return nil, err
	}
	res.Micro = micro
	if progress != nil {
		for _, m := range micro {
			fmt.Fprintf(progress, "%-28s %8.1f ns/ev  %6.3f allocs/ev  %7.1f B/ev\n",
				"micro:"+m.Name, m.NsPerEvent, m.AllocsPerEvent, m.BytesPerEvent)
		}
	}
	met, err := RunMetricsReport()
	if err != nil {
		return nil, err
	}
	res.Metrics = met
	if progress != nil {
		fmt.Fprintf(progress, "%-28s pool hit %5.1f%%  sweeps %d  sweep p50/p99 %.1f/%.1f µs\n",
			"metrics:churn", met.PoolHitRate*100, met.Sweeps, met.SweepP50Us, met.SweepP99Us)
	}
	return res, nil
}

func timeoutMark(c Cell) string {
	if c.TimedOut {
		return "  (∞ timeout)"
	}
	return ""
}
