package eval

import (
	"fmt"
	"io"
	"strings"
)

// Fig9A writes the percent-runtime-overhead table in the layout of the
// paper's Figure 9(A): one row per benchmark, TM/MOP/RV columns per
// property, plus the ORIG column (baseline seconds) and RV's ALL column.
func (r *Results) Fig9A(w io.Writer) {
	fmt.Fprintf(w, "Figure 9(A): average percent runtime overhead (∞ = timed out)\n")
	fmt.Fprintf(w, "scale=%.3g timeout=%s\n\n", r.Config.Scale, r.Config.Timeout)
	r.header(w, "ORIG(s)")
	for _, bench := range r.Config.Benchmarks {
		fmt.Fprintf(w, "%-11s %8.2f", bench, r.Base[bench].RunSec)
		for _, prop := range r.Config.Properties {
			for _, sys := range r.Config.Systems {
				c := r.Cells[bench][prop][sys]
				fmt.Fprintf(w, " %8s", fmtOverhead(c))
			}
		}
		fmt.Fprintf(w, " %8s\n", fmtOverhead(r.All[bench]))
	}
	fmt.Fprintln(w)
}

// Fig9B writes the peak-memory table of Figure 9(B), in MB.
func (r *Results) Fig9B(w io.Writer) {
	fmt.Fprintf(w, "Figure 9(B): total peak memory usage in MB (∞ = timed out)\n\n")
	r.header(w, "ORIG(MB)")
	for _, bench := range r.Config.Benchmarks {
		fmt.Fprintf(w, "%-11s %8.1f", bench, r.Base[bench].PeakMemMB)
		for _, prop := range r.Config.Properties {
			for _, sys := range r.Config.Systems {
				c := r.Cells[bench][prop][sys]
				fmt.Fprintf(w, " %8s", fmtMem(c))
			}
		}
		fmt.Fprintf(w, " %8s\n", fmtMem(r.All[bench]))
	}
	fmt.Fprintln(w)
}

// Fig10 writes the monitoring-statistics table of Figure 10: events (E),
// created (M), flagged (FM) and collected (CM) monitors, for the RV system.
func (r *Results) Fig10(w io.Writer) {
	fmt.Fprintf(w, "Figure 10: RV monitoring statistics — events (E), monitors created (M),\n")
	fmt.Fprintf(w, "flagged unnecessary (FM), collected (CM)\n\n")
	fmt.Fprintf(w, "%-11s", "")
	for _, prop := range r.Config.Properties {
		fmt.Fprintf(w, " | %-35s", prop)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-11s", "benchmark")
	for range r.Config.Properties {
		fmt.Fprintf(w, " | %8s %8s %8s %8s", "E", "M", "FM", "CM")
	}
	fmt.Fprintln(w)
	for _, bench := range r.Config.Benchmarks {
		fmt.Fprintf(w, "%-11s", bench)
		for _, prop := range r.Config.Properties {
			c := r.Cells[bench][prop][SysRV]
			fmt.Fprintf(w, " | %8s %8s %8s %8s",
				human(c.Stats.Events), human(c.Stats.Created),
				human(c.Stats.Flagged), human(c.Stats.Collected))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// Retained writes a supplementary table (not in the paper, implied by its
// Figure 10 discussion): monitor instances retained at the end of each run
// and the peak simultaneously-live count, per system. This is where the
// JavaMOP-vs-RV retention gap is most visible at simulator scale. For TM
// the counts are binding disjuncts.
func (r *Results) Retained(w io.Writer) {
	fmt.Fprintf(w, "Supplementary: retained monitor instances at end of run (peak live)\n\n")
	r.header(w, "")
	for _, bench := range r.Config.Benchmarks {
		fmt.Fprintf(w, "%-11s %8s", bench, "")
		for _, prop := range r.Config.Properties {
			for _, sys := range r.Config.Systems {
				c := r.Cells[bench][prop][sys]
				var live, peak int64
				if sys == SysTM {
					live, peak = c.TMStats.Live, c.TMStats.PeakLive
				} else {
					live, peak = c.Stats.Live, c.Stats.PeakLive
				}
				fmt.Fprintf(w, " %8s", human(uint64(live))+"/"+human(uint64(peak)))
			}
		}
		all := r.All[bench]
		fmt.Fprintf(w, " %8s\n", human(uint64(all.Stats.Live))+"/"+human(uint64(all.Stats.PeakLive)))
	}
	fmt.Fprintln(w)
}

func (r *Results) header(w io.Writer, orig string) {
	fmt.Fprintf(w, "%-11s %8s", "", orig)
	for _, prop := range r.Config.Properties {
		cell := len(r.Config.Systems) * 9
		name := prop
		if len(name) > cell-1 {
			name = name[:cell-1]
		}
		fmt.Fprintf(w, " %-*s", cell-1, name)
	}
	fmt.Fprintf(w, " %8s\n", "ALL(RV)")
	fmt.Fprintf(w, "%-11s %8s", "benchmark", "")
	for range r.Config.Properties {
		for _, sys := range r.Config.Systems {
			fmt.Fprintf(w, " %8s", sys)
		}
	}
	fmt.Fprintf(w, " %8s\n", "RV")
	fmt.Fprintln(w, strings.Repeat("-", 11+9+len(r.Config.Properties)*len(r.Config.Systems)*9+9))
}

func fmtOverhead(c Cell) string {
	if c.TimedOut {
		return "∞"
	}
	return fmt.Sprintf("%.0f", c.OverheadPct)
}

func fmtMem(c Cell) string {
	if c.TimedOut {
		return "∞"
	}
	return fmt.Sprintf("%.1f", c.PeakMemMB)
}

// human renders counts the way Figure 10 does (156M, 1.9M, 44K, 0).
func human(n uint64) string {
	switch {
	case n >= 10_000_000:
		return fmt.Sprintf("%dM", n/1_000_000)
	case n >= 1_000_000:
		return fmt.Sprintf("%.1fM", float64(n)/1e6)
	case n >= 10_000:
		return fmt.Sprintf("%dK", n/1000)
	case n >= 1_000:
		return fmt.Sprintf("%.1fK", float64(n)/1e3)
	default:
		return fmt.Sprintf("%d", n)
	}
}

// MicroTable prints the hot-path micro measurements (allocs/event is the
// CI-gated column; see Compare).
func (r *Results) MicroTable(w io.Writer) {
	if len(r.Micro) == 0 {
		return
	}
	fmt.Fprintln(w, "\nhot-path micro (fixed loops, warmed, GC paused; allocs/event is CI-gated)")
	fmt.Fprintf(w, "%-28s %10s %12s %14s %10s\n", "scenario", "events", "ns/event", "allocs/event", "B/event")
	for _, m := range r.Micro {
		fmt.Fprintf(w, "%-28s %10d %12.1f %14.3f %10.1f\n",
			m.Name, m.Events, m.NsPerEvent, m.AllocsPerEvent, m.BytesPerEvent)
	}
}

// MetricsTable prints the telemetry section: what the metrics registry
// observed over the fixed churn workload (counters CI-gated, latency
// quantiles reported only).
func (r *Results) MetricsTable(w io.Writer) {
	m := r.Metrics
	if m == nil {
		return
	}
	fmt.Fprintln(w, "\nengine telemetry (fixed churn workload, coenable GC, metrics registry attached)")
	fmt.Fprintf(w, "%-12s %-12s %-12s %-12s %-12s %-10s %-8s %-14s %-7s %-10s %-10s\n",
		"events", "created", "collected", "recycled", "reused", "pool-hit", "sweeps", "p50/p99 µs", "slabs", "arena-cap", "free-slots")
	fmt.Fprintf(w, "%-12d %-12d %-12d %-12d %-12d %-10s %-8d %-14s %-7d %-10d %-10d\n",
		m.Events, m.Created, m.Collected, m.Recycled, m.Reused,
		fmt.Sprintf("%.1f%%", m.PoolHitRate*100), m.Sweeps,
		fmt.Sprintf("%.1f/%.1f", m.SweepP50Us, m.SweepP99Us),
		m.ArenaSlabs, m.ArenaCap, m.ArenaFree)
}
