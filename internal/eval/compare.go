package eval

import (
	"fmt"
)

// Compare checks a current result grid against a baseline run of the same
// configuration and returns a list of regressions (empty = pass).
//
// Two kinds of checks:
//
//   - Monitoring counters (the Figure 10 statistics) are deterministic for
//     the seeded synthetic workloads, so any divergence is a semantic
//     change in the engine and is reported regardless of tolerance.
//     PeakLive is only compared on single-shard configurations (the
//     sharded runtime sums per-shard peaks, which is timing-dependent).
//   - Cell runtimes may regress by at most tol (relative: 1.0 allows 2×
//     the baseline). An absolute floor of 50ms per cell filters out
//     scheduling noise on the sub-millisecond cells. Timing checks are
//     advisory by nature (different hosts differ); counters are the
//     ground truth.
//   - Micro allocations (Results.Micro, when the baseline carries the
//     section) may regress by at most 25% plus half an allocation of
//     absolute slack: allocs/event is deterministic — warmed pools,
//     paused collector — so unlike CI timing it gates tightly. Micro
//     timing is never gated.
//
// Cells that timed out in either run are compared for timeout status
// only: their counters reflect whatever was processed before the
// deadline.
func Compare(base, cur *Results, tol float64) []string {
	var bad []string
	exactPeak := base.Config.Shards <= 1 && cur.Config.Shards <= 1

	cell := func(where string, b, c Cell) {
		if b.TimedOut != c.TimedOut {
			bad = append(bad, fmt.Sprintf("%s: timeout status changed %v -> %v", where, b.TimedOut, c.TimedOut))
			return
		}
		if b.TimedOut {
			return
		}
		bs, cs := b.Stats, c.Stats
		if !exactPeak {
			bs.PeakLive, cs.PeakLive = 0, 0
		}
		if bs != cs {
			bad = append(bad, fmt.Sprintf("%s: counters diverge:\n    baseline %+v\n    current  %+v", where, bs, cs))
		}
		if b.TMStats != c.TMStats {
			bad = append(bad, fmt.Sprintf("%s: tracematch counters diverge:\n    baseline %+v\n    current  %+v", where, b.TMStats, c.TMStats))
		}
		if c.RunSec > b.RunSec*(1+tol) && c.RunSec-b.RunSec > 0.05 {
			bad = append(bad, fmt.Sprintf("%s: runtime regressed %.3fs -> %.3fs (tolerance %.0f%%)", where, b.RunSec, c.RunSec, tol*100))
		}
	}

	for _, bench := range base.Config.Benchmarks {
		for _, prop := range base.Config.Properties {
			for _, sys := range base.Config.Systems {
				b, okB := lookup(base, bench, prop, sys)
				c, okC := lookup(cur, bench, prop, sys)
				if !okB || !okC {
					if okB != okC {
						bad = append(bad, fmt.Sprintf("%s/%s/%s: cell missing (baseline %v, current %v)", bench, prop, sys, okB, okC))
					}
					continue
				}
				cell(fmt.Sprintf("%s/%s/%s", bench, prop, sys), b, c)
			}
		}
		b, okB := base.All[bench]
		c, okC := cur.All[bench]
		if okB && okC {
			cell(fmt.Sprintf("%s/ALL/RV", bench), b, c)
		}
	}

	// The allocation gate: >25% allocs/event regression on any micro
	// scenario fails, with +0.5 absolute slack so a zero-allocation
	// baseline tolerates measurement jitter but not a real new
	// allocation per event.
	const allocTol, allocSlack = 0.25, 0.5
	for _, bm := range base.Micro {
		cm, ok := findMicro(cur.Micro, bm.Name)
		if !ok {
			bad = append(bad, fmt.Sprintf("micro/%s: scenario missing from current run", bm.Name))
			continue
		}
		if cm.AllocsPerEvent > bm.AllocsPerEvent*(1+allocTol)+allocSlack {
			bad = append(bad, fmt.Sprintf("micro/%s: allocs/event regressed %.3f -> %.3f (tolerance %.0f%% + %.1f)",
				bm.Name, bm.AllocsPerEvent, cm.AllocsPerEvent, allocTol*100, allocSlack))
		}
	}

	// The avoidance gate, when the baseline carries the section: the
	// recorded workload is seeded and every replay is deterministic, so the
	// settled counters of each guard configuration — including Avoided, the
	// suppression count — must match the baseline exactly, and no leg may
	// lose its identity verdict. Run times are never gated here (the cell
	// timing check above covers the grid). Baselines archived before the
	// section existed are not gated.
	if ba, ca := base.Avoid, cur.Avoid; ba != nil {
		if ca == nil {
			bad = append(bad, "avoid: section missing from current run")
		} else {
			for _, br := range ba.Runs {
				cr, ok := findAvoidRun(ca.Runs, br.Label)
				if !ok {
					bad = append(bad, fmt.Sprintf("avoid/%s: run missing from current run", br.Label))
					continue
				}
				if br.Stats != cr.Stats {
					bad = append(bad, fmt.Sprintf("avoid/%s: counters diverge:\n    baseline %+v\n    current  %+v", br.Label, br.Stats, cr.Stats))
				}
				if br.Identical && !cr.Identical {
					bad = append(bad, fmt.Sprintf("avoid/%s: replay no longer identical to its unguarded reference", br.Label))
				}
			}
		}
	}

	// The telemetry gate, when the baseline carries the section: the churn
	// workload is fixed and the registry counters settle exactly, so any
	// divergence is a semantic change in the engine's reclamation or in the
	// metrics plumbing. Latency quantiles are machine-dependent, never gated.
	if bm, cm := base.Metrics, cur.Metrics; bm != nil {
		if cm == nil {
			bad = append(bad, "metrics: section missing from current run")
		} else {
			b, c := *bm, *cm
			b.SweepP50Us, b.SweepP99Us = 0, 0
			c.SweepP50Us, c.SweepP99Us = 0, 0
			if b.ArenaSlabs == 0 && b.ArenaCap == 0 && b.ArenaFree == 0 {
				// Baseline predates the arena-occupancy columns; don't
				// fail it on fields it never recorded.
				c.ArenaSlabs, c.ArenaCap, c.ArenaFree = 0, 0, 0
			}
			if b != c {
				bad = append(bad, fmt.Sprintf("metrics: telemetry counters diverge:\n    baseline %+v\n    current  %+v", b, c))
			}
		}
	}
	return bad
}

func findAvoidRun(runs []AvoidRun, label string) (AvoidRun, bool) {
	for _, r := range runs {
		if r.Label == label {
			return r, true
		}
	}
	return AvoidRun{}, false
}

func findMicro(ms []MicroResult, name string) (MicroResult, bool) {
	for _, m := range ms {
		if m.Name == name {
			return m, true
		}
	}
	return MicroResult{}, false
}

func lookup(r *Results, bench, prop string, sys System) (Cell, bool) {
	props, ok := r.Cells[bench]
	if !ok {
		return Cell{}, false
	}
	systems, ok := props[prop]
	if !ok {
		return Cell{}, false
	}
	c, ok := systems[sys]
	return c, ok
}
