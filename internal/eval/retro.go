// Retroactive-monitoring experiment: record a DaCapo workload's monitored
// stream into the persistent segment store, then replay it through fresh
// engines — sequentially and fanned out over the recorded pivot index —
// and compare against the online run. The section reports the retro
// checking rate (the store's reason to exist: checking a recorded past is
// far faster than the live run that produced it, and new properties can
// be checked against old runs without re-executing them) and verifies the
// bit-identity contract: same verdicts, same settled counters, at every
// worker count.

package eval

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"rvgo/internal/cliutil"
	"rvgo/internal/dacapo"
	"rvgo/internal/heap"
	"rvgo/internal/monitor"
	"rvgo/internal/param"
	"rvgo/internal/props"
	"rvgo/internal/shard"
	"rvgo/internal/trace"
)

// RetroConfig controls the retro tier.
type RetroConfig struct {
	Scale   float64 // workload scale (1.0 ≈ paper/50)
	Bench   string  // DaCapo profile (default avrora)
	Prop    string  // property (default UnsafeIter)
	Workers []int   // replay fan-outs (default 1, 4)
	// Dir, when non-empty, keeps the recorded trace there (default: a
	// temporary directory removed after the run).
	Dir string
}

// RetroRun is one replay measurement.
type RetroRun struct {
	Workers   int
	Sec       float64
	Rate      float64 // replayed events/s
	Speedup   float64 // vs the online single-core rate
	Stats     monitor.Stats
	Identical bool // verdicts + settled counters equal to the online run
}

// RetroSelective measures a single-slice query over the recorded pivot
// index: "what happened to this one object?" asked of the whole trace.
// Slices of distinct pivot objects are independent (paper §2), so the
// index proves whole segments irrelevant without dispatching them —
// Coverage counts every trace event the query disposed of, dispatched
// or index-skipped, per second. This is the store's fast tier: coverage
// runs at decode speed or better while full-fidelity replay is bounded
// by the engine.
type RetroSelective struct {
	Pivot      uint64 // queried pivot object ID
	Sec        float64
	Coverage   float64 // trace events disposed of (dispatched + skipped) per second
	Dispatched uint64  // events actually dispatched to the engine
	Skipped    uint64  // events skipped by the pivot filter
	Skimmed    int     // segments the index let the query skip wholesale
	Speedup    float64 // coverage vs the online single-core rate
	Identical  bool    // verdicts equal the online verdicts for this pivot
}

// RetroResult is the retro section of a result grid.
type RetroResult struct {
	Bench, Prop string
	OnlineSec   float64
	OnlineRate  float64 // events/s of the online sequential engine
	Online      monitor.Stats
	TraceMB     float64
	Segments    int
	Runs        []RetroRun
	Selective   *RetroSelective `json:",omitempty"`
}

// recordingDispatcher taps every dispatched event into the trace writer
// before the engine; deaths are recorded by the heap's free hook. It is
// the internal image of the façade's WithRecord tap, shaped for the
// dacapo adapter's fast path.
type recordingDispatcher struct {
	rt  monitor.Runtime
	w   *trace.Writer
	err error
}

func (r *recordingDispatcher) Spec() *monitor.Spec { return r.rt.Spec() }

func (r *recordingDispatcher) Dispatch(sym int, theta param.Instance) {
	if err := r.w.Event(sym, theta); err != nil && r.err == nil {
		r.err = err
	}
	r.rt.Dispatch(sym, theta)
}

// EmitNamed satisfies the adapter's slow-path Emitter surface; the fast
// path never calls it.
func (r *recordingDispatcher) EmitNamed(name string, vals ...heap.Ref) error {
	return r.rt.EmitNamed(name, vals...)
}

func verdictKey(v monitor.Verdict) string {
	k := v.Inst.Key()
	return fmt.Sprintf("%d/%s/%v/%v", v.Sym, v.Cat, k.Mask, k.IDs)
}

// onlinePass drives the workload through a sequential engine, optionally
// recording it, and returns the run time, settled stats and sorted
// verdict keys. Deaths go through the explicit Free path (hook on the
// simulated heap) so the recorded stream carries them at their positions.
func onlinePass(cfg RetroConfig, spec *monitor.Spec, w *trace.Writer) (float64, monitor.Stats, []monitor.Verdict, error) {
	var verdicts []monitor.Verdict
	eng, err := monitor.New(spec, monitor.Options{
		GC:        monitor.GCCoenable,
		Creation:  monitor.CreateEnable,
		OnVerdict: func(v monitor.Verdict) { verdicts = append(verdicts, v) },
	})
	if err != nil {
		return 0, monitor.Stats{}, nil, err
	}
	defer eng.Close()
	rec := &recordingDispatcher{rt: eng, w: w}
	sec, _, _, err := runWorkload(cfg.Bench, cfg.Scale, 0, func(rt *dacapo.Runtime) error {
		var sink dacapo.Sink
		var err error
		if w != nil {
			sink, err = dacapo.Adapt(cfg.Prop, rec)
		} else {
			sink, err = dacapo.Adapt(cfg.Prop, eng)
		}
		if err != nil {
			return err
		}
		rt.AddSink(sink)
		rt.Heap.SetFreeHook(func(o *heap.Object) {
			eng.Free(o)
			if w != nil {
				if werr := w.Free(o); werr != nil && rec.err == nil {
					rec.err = werr
				}
			}
		})
		return nil
	}, eng.Flush)
	if err != nil {
		return 0, monitor.Stats{}, nil, err
	}
	if rec.err != nil {
		return 0, monitor.Stats{}, nil, rec.err
	}
	return sec, eng.Stats(), verdicts, nil
}

// sortedKeys renders verdicts as sorted identity keys for comparison.
func sortedKeys(verdicts []monitor.Verdict) []string {
	keys := make([]string, len(verdicts))
	for i, v := range verdicts {
		keys[i] = verdictKey(v)
	}
	sort.Strings(keys)
	return keys
}

// RunRetro records one monitored workload and replays it at each worker
// count, verifying bit-identity with the online run.
func RunRetro(cfg RetroConfig) (*RetroResult, error) {
	if cfg.Bench == "" {
		cfg.Bench = "avrora"
	}
	if cfg.Prop == "" {
		cfg.Prop = "UnsafeIter"
	}
	if cfg.Scale <= 0 {
		cfg.Scale = 0.1
	}
	if len(cfg.Workers) == 0 {
		cfg.Workers = []int{1, 4}
	}
	dir := cfg.Dir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "rvretro")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	spec, err := props.Build(cfg.Prop)
	if err != nil {
		return nil, err
	}
	res := &RetroResult{Bench: cfg.Bench, Prop: cfg.Prop}

	// Online reference: unrecorded, so the baseline rate excludes the
	// recorder's write cost. The recorded pass below drives the identical
	// stream (same heap discipline), so its verdicts match by
	// construction and only the reference's are kept.
	sec, stats, online, err := onlinePass(cfg, spec, nil)
	if err != nil {
		return nil, fmt.Errorf("eval: retro online pass: %w", err)
	}
	onlineVerdicts := sortedKeys(online)
	res.OnlineSec, res.Online = sec, stats
	if sec > 0 {
		res.OnlineRate = float64(stats.Events) / sec
	}

	path := filepath.Join(dir, fmt.Sprintf("%s_%s.rvt", cfg.Bench, cfg.Prop))
	w, err := trace.CreateForSpec(path, spec, trace.WriterOptions{})
	if err != nil {
		return nil, err
	}
	if _, recStats, _, err := onlinePass(cfg, spec, w); err != nil {
		w.Close()
		return nil, fmt.Errorf("eval: retro recording pass: %w", err)
	} else if recStats != stats {
		w.Close()
		return nil, fmt.Errorf("eval: recording pass diverged from reference: %+v vs %+v", recStats, stats)
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	if fi, err := os.Stat(path); err == nil {
		res.TraceMB = float64(fi.Size()) / (1 << 20)
	}

	for _, workers := range cfg.Workers {
		var retro []string
		q := cliutil.RetroQuery{
			GC:        monitor.GCCoenable,
			Workers:   workers,
			OnVerdict: func(v monitor.Verdict) { retro = append(retro, verdictKey(v)) },
		}
		start := time.Now()
		qr, err := cliutil.RunRetroQuery(path, spec, q)
		if err != nil {
			return nil, fmt.Errorf("eval: retro replay ×%d: %w", workers, err)
		}
		rsec := time.Since(start).Seconds()
		res.Segments = qr.Segments
		sort.Strings(retro)
		run := RetroRun{Workers: workers, Sec: rsec, Stats: qr.Stats}
		if rsec > 0 {
			run.Rate = float64(qr.Stats.Events) / rsec
		}
		if res.OnlineRate > 0 {
			run.Speedup = run.Rate / res.OnlineRate
		}
		run.Identical = fmt.Sprint(retro) == fmt.Sprint(onlineVerdicts) &&
			qr.Stats.Events == stats.Events &&
			qr.Stats.Created == stats.Created &&
			qr.Stats.Flagged == stats.Flagged &&
			qr.Stats.Collected == stats.Collected &&
			qr.Stats.GoalVerdicts == stats.GoalVerdicts &&
			qr.Stats.Steps == stats.Steps &&
			qr.Stats.Live == stats.Live
		res.Runs = append(res.Runs, run)
	}

	if sel, err := selectiveQuery(path, spec, online, res.OnlineRate); err != nil {
		return nil, fmt.Errorf("eval: retro selective query: %w", err)
	} else if sel != nil {
		res.Selective = sel
	}
	return res, nil
}

// selectiveQuery replays one slice out of the recorded past — preferring
// a pivot object that produced a verdict online, so the identity check
// is non-vacuous — and measures the coverage rate the pivot index buys.
// Returns nil (no error) when the spec has no pivot to index by.
func selectiveQuery(path string, spec *monitor.Spec, online []monitor.Verdict, onlineRate float64) (*RetroSelective, error) {
	router, err := shard.NewRouter(spec, 2)
	if err != nil || router.Pivot() < 0 {
		return nil, nil
	}
	piv := router.Pivot()
	r, err := trace.Open(path)
	if err != nil {
		return nil, err
	}
	footprint := r.PivotSegments()
	// Prefer the verdict-bearing pivot with the smallest segment footprint:
	// the identity check stays non-vacuous and the index has segments to
	// skip. Fall back to the narrowest slice in the trace.
	var pivotID uint64
	best := int(^uint(0) >> 1)
	for _, v := range online {
		if k := v.Inst.Key(); k.Mask.Has(piv) {
			if n := footprint[k.IDs[piv]]; pivotID == 0 || n < best {
				pivotID, best = k.IDs[piv], n
			}
		}
	}
	if pivotID == 0 {
		for id, n := range footprint {
			if pivotID == 0 || n < best || (n == best && id < pivotID) {
				pivotID, best = id, n
			}
		}
	}
	if pivotID == 0 {
		return nil, nil
	}
	var expect []string
	for _, v := range online {
		if k := v.Inst.Key(); k.Mask.Has(piv) && k.IDs[piv] == pivotID {
			expect = append(expect, verdictKey(v))
		}
	}
	sort.Strings(expect)

	var got []string
	q := cliutil.RetroQuery{
		GC:        monitor.GCCoenable,
		Workers:   1,
		Pivots:    []uint64{pivotID},
		OnVerdict: func(v monitor.Verdict) { got = append(got, verdictKey(v)) },
	}
	start := time.Now()
	qr, err := cliutil.RunRetroQuery(path, spec, q)
	if err != nil {
		return nil, err
	}
	rsec := time.Since(start).Seconds()
	sort.Strings(got)
	covered := qr.Replay.Events + qr.Replay.EventsSkipped + qr.Replay.UnknownSkipped
	sel := &RetroSelective{
		Pivot:      pivotID,
		Sec:        rsec,
		Dispatched: qr.Replay.Events,
		Skipped:    qr.Replay.EventsSkipped,
		Skimmed:    qr.Replay.SegmentsSkimmed,
		Identical:  fmt.Sprint(got) == fmt.Sprint(expect),
	}
	if rsec > 0 {
		sel.Coverage = float64(covered) / rsec
	}
	if onlineRate > 0 {
		sel.Speedup = sel.Coverage / onlineRate
	}
	return sel, nil
}
