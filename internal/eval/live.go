// Live-object ingestion experiment: the same UNSAFEITER monitoring that
// the Figure 9/10 grid drives from the simulated DaCapo substrate, driven
// instead through the rv frontend over real heap-allocated Go objects,
// with monitor reclamation measured against real garbage-collection
// cycles. Collection points are pinned (runtime.GC via registry.Settle)
// so the reported counters are deterministic: every round's dropped
// iterators are collected, their deaths delivered, before the next round
// begins. The table shows the paper's Figure 10 story against a real
// collector: coenable GC reclaims monitors whose iterators died even
// though their collections live on, which the all-dead condition cannot.

package eval

import (
	"fmt"
	"math"
	"runtime"
	rtmetrics "runtime/metrics"
	"time"

	"rvgo"
	"rvgo/internal/arena"
	"rvgo/internal/heap"
	"rvgo/internal/monitor"
	"rvgo/internal/props"
	"rvgo/rv"
	"rvgo/spec"
)

// LiveConfig controls the live-object run.
type LiveConfig struct {
	Scale  float64 // 1.0 ≈ 32k events per policy
	Shards int     // 0/1 = sequential engine, >1 = sharded runtime
}

// LiveResult is one policy's outcome.
type LiveResult struct {
	Policy     monitor.GCPolicy
	Stats      monitor.Stats
	RunSec     float64
	GCPauseSec float64 // host-collector STW pause accumulated over the run
	GCPinned   int     // pinned collection points (one per round)
	Delivered  int     // death signals delivered to the backend
	Settled    bool    // every dropped object's cleanup fired in time
}

// gcPauseTotal approximates the cumulative stop-the-world pause time from
// the runtime's /gc/pauses histogram (bucket-midpoint sum — exact totals
// are not exported, but the approximation is consistent between reads, so
// deltas compare fairly).
func gcPauseTotal() float64 {
	s := []rtmetrics.Sample{{Name: "/gc/pauses:seconds"}}
	rtmetrics.Read(s)
	if s[0].Value.Kind() != rtmetrics.KindFloat64Histogram {
		return 0
	}
	h := s[0].Value.Float64Histogram()
	total := 0.0
	for i, count := range h.Counts {
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		if math.IsInf(lo, -1) {
			lo = hi
		}
		if math.IsInf(hi, 1) {
			hi = lo
		}
		total += float64(count) * (lo + hi) / 2
	}
	return total
}

// liveColl and liveIter are the real parameter objects. Both carry a
// pointer so they never land in the tiny allocator (see package registry).
type liveColl struct {
	id    int
	iters []*liveIter // the collection's view of its live iterators
}

type liveIter struct {
	c   *liveColl
	pos int
}

// liveRound allocates and fully exercises one round of iterators over the
// collections: create, a few nexts, and on every fourth iterator an
// update-then-next (the UNSAFEITER violation, so the run also produces
// verdicts). The iterators are unreachable when the function returns —
// noinline keeps them out of the caller's frame — which is what makes the
// caller's pinned Collect deterministic.
//
//go:noinline
func liveRound(s *rv.Session, colls []*liveColl, perColl int) (iters, events int, err error) {
	attach := func(ev string, objs ...any) {
		if err == nil {
			if e := s.Attach(ev, objs...); e != nil {
				err = e
			}
			events++
		}
	}
	for _, c := range colls {
		for k := 0; k < perColl; k++ {
			it := &liveIter{c: c}
			c.iters = append(c.iters, it)
			attach("create", c, it)
			attach("next", it)
			if k%4 == 3 {
				attach("update", c)
				attach("next", it)
			}
			if err != nil {
				return 0, events, err
			}
		}
		iters += len(c.iters)
		// Drop the strong references — including the backing array, which
		// would otherwise keep every iterator reachable.
		c.iters = nil
	}
	return iters, events, nil
}

// RunLivePolicy runs the live-object workload under one GC policy.
func RunLivePolicy(gc monitor.GCPolicy, cfg LiveConfig) (LiveResult, error) {
	res := LiveResult{Policy: gc, Settled: true}
	sp, err := spec.Builtin("UnsafeIter")
	if err != nil {
		return res, err
	}
	opts := []rvgo.Option{rvgo.WithGC(gc)}
	if cfg.Shards > 1 {
		opts = append(opts, rvgo.WithShards(cfg.Shards))
	}
	m, err := rvgo.New(sp, opts...)
	if err != nil {
		return res, err
	}
	s := rv.New(m, rv.Options{ManualPoll: true})

	scale := cfg.Scale
	if scale <= 0 {
		scale = 1.0
	}
	rounds := int(32 * scale)
	if rounds < 1 {
		rounds = 1
	}
	const nColl, perColl = 8, 32

	colls := make([]*liveColl, nColl)
	for i := range colls {
		colls[i] = &liveColl{id: i}
	}
	pauseBefore := gcPauseTotal()
	start := time.Now()
	for r := 0; r < rounds; r++ {
		dropped, _, err := liveRound(s, colls, perColl)
		if err != nil {
			s.Close()
			return res, err
		}
		// Pin the collection point: the round's iterators are garbage
		// now; collect them and deliver their deaths before round r+1.
		delivered, ok := s.Collect(dropped, 30*time.Second)
		res.Delivered += delivered
		res.GCPinned++
		if !ok {
			res.Settled = false
		}
	}
	res.RunSec = time.Since(start).Seconds()
	res.GCPauseSec = gcPauseTotal() - pauseBefore
	s.Flush()
	res.Stats = s.Stats()
	s.Close()
	return res, nil
}

// RunLive runs the workload under all three GC policies, in the paper's
// presentation order (the pre-GC baseline, JavaMOP's all-dead condition,
// RV's coenable sets).
func RunLive(cfg LiveConfig) ([]LiveResult, error) {
	var out []LiveResult
	for _, gc := range []monitor.GCPolicy{monitor.GCNone, monitor.GCAllDead, monitor.GCCoenable} {
		r, err := RunLivePolicy(gc, cfg)
		if err != nil {
			return nil, fmt.Errorf("live workload, gc=%s: %w", gc, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// LiveReport bundles the -live artifact: the per-policy ingestion results
// and the scale tier, archived together by the bench CI job.
type LiveReport struct {
	Policies []LiveResult
	Scale    *LiveScaleResult
}

// LiveScaleResult is the scale tier of the live experiment: the same
// engine holding 10× more live monitors must not cost the host collector
// proportionally more stop-the-world time — the slab store is pointer-free
// (noscan), so pause time stays flat while occupancy scales. Pause numbers
// are machine-dependent and reported, not CI-gated; the Sublinear verdict
// uses a deliberately loose bound (5× over a floored baseline) so it holds
// on noisy hosts whenever the store really is GC-invisible.
type LiveScaleResult struct {
	SmallMonitors int     // live monitors in the baseline population
	BigMonitors   int     // live monitors in the 10× population
	SmallPauseSec float64 // STW pause over 5 forced GCs, baseline
	BigPauseSec   float64 // STW pause over 5 forced GCs, 10× population
	Sublinear     bool    // big pause ≤ 5× floored baseline pause
	Arena         arena.Stats
	Occupancy     float64 // Arena live slots / capacity at the 10× peak
}

// RunLiveScale builds two UNSAFEITER monitor populations a decade apart
// (GCNone, so nothing is reclaimed) and measures the host collector's
// stop-the-world cost against each.
func RunLiveScale(cfg LiveConfig) (*LiveScaleResult, error) {
	scale := cfg.Scale
	if scale <= 0 {
		scale = 1.0
	}
	big := int(500_000 * scale)
	if big < 20_000 {
		big = 20_000
	}
	res := &LiveScaleResult{SmallMonitors: big / 10, BigMonitors: big}

	measure := func(n int) (float64, *monitor.Engine, *heap.Heap, error) {
		sp, err := props.Build("UnsafeIter")
		if err != nil {
			return 0, nil, nil, err
		}
		eng, err := monitor.New(sp, monitor.Options{
			GC:       monitor.GCNone,
			Creation: monitor.CreateEnable,
			// The population never dies; don't pay sweeps over it.
			SweepInterval: 1 << 30,
		})
		if err != nil {
			return 0, nil, nil, err
		}
		create, _ := sp.Symbol("create")
		h := heap.New()
		c := h.Alloc("c")
		for i := 0; i < n; i++ {
			eng.Emit(create, c, h.Alloc(""))
		}
		runtime.GC() // let the build's floating garbage clear
		before := gcPauseTotal()
		for i := 0; i < 5; i++ {
			runtime.GC()
		}
		return gcPauseTotal() - before, eng, h, nil
	}

	pause, eng, _, err := measure(res.SmallMonitors)
	if err != nil {
		return nil, err
	}
	res.SmallPauseSec = pause
	eng.Close()

	pause, eng, _, err = measure(res.BigMonitors)
	if err != nil {
		return nil, err
	}
	res.BigPauseSec = pause
	res.Arena = eng.ArenaStats()
	res.Occupancy = res.Arena.Occupancy()
	eng.Close()

	floored := res.SmallPauseSec
	if floored < 2e-3 {
		floored = 2e-3
	}
	res.Sublinear = res.BigPauseSec <= floored*5
	return res, nil
}
