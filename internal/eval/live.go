// Live-object ingestion experiment: the same UNSAFEITER monitoring that
// the Figure 9/10 grid drives from the simulated DaCapo substrate, driven
// instead through the rv frontend over real heap-allocated Go objects,
// with monitor reclamation measured against real garbage-collection
// cycles. Collection points are pinned (runtime.GC via registry.Settle)
// so the reported counters are deterministic: every round's dropped
// iterators are collected, their deaths delivered, before the next round
// begins. The table shows the paper's Figure 10 story against a real
// collector: coenable GC reclaims monitors whose iterators died even
// though their collections live on, which the all-dead condition cannot.

package eval

import (
	"fmt"
	"time"

	"rvgo"
	"rvgo/internal/monitor"
	"rvgo/rv"
	"rvgo/spec"
)

// LiveConfig controls the live-object run.
type LiveConfig struct {
	Scale  float64 // 1.0 ≈ 32k events per policy
	Shards int     // 0/1 = sequential engine, >1 = sharded runtime
}

// LiveResult is one policy's outcome.
type LiveResult struct {
	Policy    monitor.GCPolicy
	Stats     monitor.Stats
	RunSec    float64
	GCPinned  int  // pinned collection points (one per round)
	Delivered int  // death signals delivered to the backend
	Settled   bool // every dropped object's cleanup fired in time
}

// liveColl and liveIter are the real parameter objects. Both carry a
// pointer so they never land in the tiny allocator (see package registry).
type liveColl struct {
	id    int
	iters []*liveIter // the collection's view of its live iterators
}

type liveIter struct {
	c   *liveColl
	pos int
}

// liveRound allocates and fully exercises one round of iterators over the
// collections: create, a few nexts, and on every fourth iterator an
// update-then-next (the UNSAFEITER violation, so the run also produces
// verdicts). The iterators are unreachable when the function returns —
// noinline keeps them out of the caller's frame — which is what makes the
// caller's pinned Collect deterministic.
//
//go:noinline
func liveRound(s *rv.Session, colls []*liveColl, perColl int) (iters, events int, err error) {
	attach := func(ev string, objs ...any) {
		if err == nil {
			if e := s.Attach(ev, objs...); e != nil {
				err = e
			}
			events++
		}
	}
	for _, c := range colls {
		for k := 0; k < perColl; k++ {
			it := &liveIter{c: c}
			c.iters = append(c.iters, it)
			attach("create", c, it)
			attach("next", it)
			if k%4 == 3 {
				attach("update", c)
				attach("next", it)
			}
			if err != nil {
				return 0, events, err
			}
		}
		iters += len(c.iters)
		// Drop the strong references — including the backing array, which
		// would otherwise keep every iterator reachable.
		c.iters = nil
	}
	return iters, events, nil
}

// RunLivePolicy runs the live-object workload under one GC policy.
func RunLivePolicy(gc monitor.GCPolicy, cfg LiveConfig) (LiveResult, error) {
	res := LiveResult{Policy: gc, Settled: true}
	sp, err := spec.Builtin("UnsafeIter")
	if err != nil {
		return res, err
	}
	opts := []rvgo.Option{rvgo.WithGC(gc)}
	if cfg.Shards > 1 {
		opts = append(opts, rvgo.WithShards(cfg.Shards))
	}
	m, err := rvgo.New(sp, opts...)
	if err != nil {
		return res, err
	}
	s := rv.New(m, rv.Options{ManualPoll: true})

	scale := cfg.Scale
	if scale <= 0 {
		scale = 1.0
	}
	rounds := int(32 * scale)
	if rounds < 1 {
		rounds = 1
	}
	const nColl, perColl = 8, 32

	colls := make([]*liveColl, nColl)
	for i := range colls {
		colls[i] = &liveColl{id: i}
	}
	start := time.Now()
	for r := 0; r < rounds; r++ {
		dropped, _, err := liveRound(s, colls, perColl)
		if err != nil {
			s.Close()
			return res, err
		}
		// Pin the collection point: the round's iterators are garbage
		// now; collect them and deliver their deaths before round r+1.
		delivered, ok := s.Collect(dropped, 30*time.Second)
		res.Delivered += delivered
		res.GCPinned++
		if !ok {
			res.Settled = false
		}
	}
	res.RunSec = time.Since(start).Seconds()
	s.Flush()
	res.Stats = s.Stats()
	s.Close()
	return res, nil
}

// RunLive runs the workload under all three GC policies, in the paper's
// presentation order (the pre-GC baseline, JavaMOP's all-dead condition,
// RV's coenable sets).
func RunLive(cfg LiveConfig) ([]LiveResult, error) {
	var out []LiveResult
	for _, gc := range []monitor.GCPolicy{monitor.GCNone, monitor.GCAllDead, monitor.GCCoenable} {
		r, err := RunLivePolicy(gc, cfg)
		if err != nil {
			return nil, fmt.Errorf("live workload, gc=%s: %w", gc, err)
		}
		out = append(out, r)
	}
	return out, nil
}
