package cluster_test

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rvgo/internal/cluster"
	"rvgo/internal/conformance"
	"rvgo/internal/monitor"
	"rvgo/internal/props"
	"rvgo/internal/remote"
	"rvgo/internal/server"
	"rvgo/internal/shard"
	"rvgo/internal/wire"
)

// testNode is one fake-addressed cluster node: a real monitoring server on
// a TCP loopback listener, reachable through the shared dial map only
// while its gate is up. Lowering the gate and shutting the server down is
// the test's SIGKILL: live connections die mid-frame, nothing drains.
type testNode struct {
	srv *server.Server
	lst net.Listener
	up  atomic.Bool
}

func (n *testNode) kill() {
	n.up.Store(false)
	n.srv.Shutdown(0)
}

// startNodes runs one server per name and returns the node map plus a
// dial function that resolves the fake names, refusing downed nodes.
func startNodes(t testing.TB, names ...string) (map[string]*testNode, func(string) (net.Conn, error)) {
	t.Helper()
	nodes := map[string]*testNode{}
	for _, name := range names {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := server.New(server.Options{})
		go srv.Serve(l)
		n := &testNode{srv: srv, lst: l}
		n.up.Store(true)
		nodes[name] = n
		t.Cleanup(func() { srv.Shutdown(time.Second) })
	}
	dial := func(addr string) (net.Conn, error) {
		n := nodes[addr]
		if n == nil {
			return nil, fmt.Errorf("unknown node %q", addr)
		}
		if !n.up.Load() {
			return nil, fmt.Errorf("node %s is down", addr)
		}
		return net.Dial("tcp", n.lst.Addr().String())
	}
	return nodes, dial
}

// TestClusterOracle is the headline acceptance test: the avrora trace
// through a 4-node cluster.Client — with a fifth node joining at a third
// of the trace, one node killed outright at the half, and another drained
// gracefully at two thirds — must match the sequential engine bit for bit
// under every GC policy.
func TestClusterOracle(t *testing.T) {
	conformance.RunClusterOracle(t, func(t *testing.T, prop string, gc monitor.GCPolicy, onVerdict func(monitor.Verdict)) conformance.ClusterHarness {
		nodes, dial := startNodes(t, "n1", "n2", "n3", "n4", "n5")
		c, err := cluster.Open(cluster.Options{
			Prop:      prop,
			GC:        gc,
			Creation:  monitor.CreateEnable,
			Nodes:     []string{"n1", "n2", "n3", "n4"},
			Dial:      dial,
			OnVerdict: onVerdict,
		})
		if err != nil {
			t.Fatal(err)
		}
		return conformance.ClusterHarness{
			RT:    c,
			Join:  func() error { return c.AddNode("n5") },
			Kill:  func() error { nodes["n2"].kill(); return nil },
			Leave: func() error { return c.RemoveNode("n1") },
		}
	})
}

// TestClusterAvoidanceOracle replays the avrora trace through a stable
// 4-node cluster under every GC policy × avoidance mode (the mode travels
// in every slot session's Hello) and holds verdicts and settled counters
// against the unguarded sequential reference.
func TestClusterAvoidanceOracle(t *testing.T) {
	conformance.RunAvoidanceOracle(t, func(t *testing.T, prop string, gc monitor.GCPolicy, avoid monitor.AvoidMode, onVerdict func(monitor.Verdict)) monitor.Runtime {
		_, dial := startNodes(t, "n1", "n2", "n3", "n4")
		c, err := cluster.Open(cluster.Options{
			Prop:      prop,
			GC:        gc,
			Creation:  monitor.CreateEnable,
			Avoid:     avoid,
			Nodes:     []string{"n1", "n2", "n3", "n4"},
			Dial:      dial,
			OnVerdict: onVerdict,
		})
		if err != nil {
			t.Fatal(err)
		}
		return c
	})
}

// TestRouterOracle runs the same bar through the full deployment shape: an
// ordinary remote.Client speaking the plain wire protocol to a Router,
// which fans out to the nodes. The fifth node is down at session open
// (exercising the handshake's probe-and-retry) and joins when its gate
// lifts and the health probe re-admits it; the kill exercises lazy
// eviction and crash handoff under a live upstream session.
func TestRouterOracle(t *testing.T) {
	conformance.RunClusterOracle(t, func(t *testing.T, prop string, gc monitor.GCPolicy, onVerdict func(monitor.Verdict)) conformance.ClusterHarness {
		nodes, dial := startNodes(t, "n1", "n2", "n3", "n4", "n5")
		nodes["n5"].up.Store(false) // running, but unreachable until Join
		rtr, err := cluster.NewRouter(cluster.RouterOptions{
			Nodes: []string{"n1", "n2", "n3", "n4", "n5"},
			Dial:  dial,
			Probe: 20 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go rtr.Serve(l)
		t.Cleanup(func() { rtr.Shutdown(time.Second) })
		cl, err := remote.Dial(l.Addr().String(), remote.Options{
			Prop:      prop,
			GC:        gc,
			Creation:  monitor.CreateEnable,
			OnVerdict: onVerdict,
		})
		if err != nil {
			t.Fatal(err)
		}
		return conformance.ClusterHarness{
			RT:   cl,
			Join: func() error { nodes["n5"].up.Store(true); return nil },
			Kill: func() error { nodes["n2"].kill(); return nil },
		}
	})
}

// stubNode speaks just enough of the wire protocol to hold slot sessions:
// it grants a one-event credit window at handshake and never replenishes
// it until the test says so — the refusing node of the all-or-nothing
// broadcast discipline.
type stubNode struct {
	lst    net.Listener
	ack    wire.HelloAck
	mu     sync.Mutex
	conns  []*stubConn
	events atomic.Uint64
}

type stubConn struct {
	mu sync.Mutex
	w  *wire.Writer
}

func (sc *stubConn) send(f func(*wire.Writer) error) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if err := f(sc.w); err == nil {
		sc.w.Flush()
	}
}

func startStub(t *testing.T, spec *monitor.Spec) *stubNode {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ack := wire.HelloAck{Window: 1, SpecName: spec.Name, Params: spec.Params}
	for _, ev := range spec.Events {
		ack.Events = append(ack.Events, wire.EventDef{Name: ev.Name, Params: uint64(ev.Params)})
	}
	s := &stubNode{lst: l, ack: ack}
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go s.serve(conn)
		}
	}()
	t.Cleanup(func() { l.Close() })
	return s
}

func (s *stubNode) serve(conn net.Conn) {
	defer conn.Close()
	r := wire.NewReader(conn)
	sc := &stubConn{w: wire.NewWriter(conn)}
	var msg wire.Msg
	if err := r.Next(&msg); err != nil || msg.Type != wire.TNodeHello {
		return
	}
	if err := r.Next(&msg); err != nil || msg.Type != wire.THello {
		return
	}
	sc.send(func(w *wire.Writer) error { return w.WriteHelloAck(s.ack) })
	s.mu.Lock()
	s.conns = append(s.conns, sc)
	s.mu.Unlock()
	for {
		if err := r.Next(&msg); err != nil {
			return
		}
		switch msg.Type {
		case wire.TEvent:
			s.events.Add(1)
		case wire.TFree, wire.THandoffBegin:
		case wire.TBarrier:
			tok := msg.Sync.Token
			sc.send(func(w *wire.Writer) error { return w.WriteSync(wire.TBarrierAck, tok) })
		case wire.TFlush:
			tok := msg.Sync.Token
			sc.send(func(w *wire.Writer) error { return w.WriteSync(wire.TFlushAck, tok) })
		case wire.TStatsReq:
			tok := msg.Sync.Token
			sc.send(func(w *wire.Writer) error { return w.WriteStats(wire.Stats{Token: tok}) })
		case wire.THandoffEnd:
			tok := msg.Sync.Token
			sc.send(func(w *wire.Writer) error { return w.WriteHandoffAck(wire.Stats{Token: tok}) })
		case wire.TBye:
			sc.send(func(w *wire.Writer) error { return w.WriteByeAck(wire.ByeAck{}) })
			return
		}
	}
}

// grant replenishes n credits on every stub session.
func (s *stubNode) grant(n uint64) {
	s.mu.Lock()
	conns := append([]*stubConn(nil), s.conns...)
	s.mu.Unlock()
	for _, sc := range conns {
		sc.send(func(w *wire.Writer) error { return w.WriteCredit(n) })
	}
}

type testRef uint64

func (r testRef) ID() uint64    { return uint64(r) }
func (r testRef) Alive() bool   { return true }
func (r testRef) Label() string { return fmt.Sprintf("t%d", uint64(r)) }

func sessionEventSum(srv *server.Server) uint64 {
	var sum uint64
	for _, s := range srv.Statusz().Sessions {
		sum += s.Events
	}
	return sum
}

// TestBroadcastAllOrNothing pins the cluster credit discipline: a
// broadcast event is written to no slot until every slot has granted a
// credit, so one refusing node (the stub, with its one-credit window)
// withholds the event from the healthy node too — partial prefixes never
// happen, and the upstream producer stalls end-to-end.
func TestBroadcastAllOrNothing(t *testing.T) {
	spec, err := props.Build("UnsafeIter")
	if err != nil {
		t.Fatal(err)
	}
	sr, err := shard.NewRouter(spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	bsym := -1
	for sym, ev := range spec.Events {
		if !ev.Params.Has(sr.Pivot()) {
			bsym = sym
			break
		}
	}
	if bsym < 0 {
		t.Fatal("UnsafeIter has no broadcast event; the test needs one")
	}

	realLst, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.Options{})
	go srv.Serve(realLst)
	t.Cleanup(func() { srv.Shutdown(time.Second) })
	stub := startStub(t, spec)
	dial := func(addr string) (net.Conn, error) {
		switch addr {
		case "real":
			return net.Dial("tcp", realLst.Addr().String())
		case "stub":
			return net.Dial("tcp", stub.lst.Addr().String())
		}
		return nil, fmt.Errorf("unknown node %q", addr)
	}

	// Find a seed under which both nodes own slots (the rendezvous spread
	// over two nodes leaves one empty only with vanishing probability, but
	// the test must not depend on luck).
	var c *cluster.Client
	for seed := uint64(0); ; seed++ {
		if seed == 16 {
			t.Fatal("no seed spread slots over both nodes")
		}
		cc, err := cluster.Open(cluster.Options{
			Prop:     "UnsafeIter",
			GC:       monitor.GCNone,
			Creation: monitor.CreateEnable,
			Nodes:    []string{"real", "stub"},
			Seed:     seed,
			Dial:     dial,
		})
		if err != nil {
			t.Fatal(err)
		}
		spread := true
		for _, ns := range cc.Nodes() {
			if ns.Slots == 0 {
				spread = false
			}
		}
		if spread {
			c = cc
			break
		}
		cc.Close()
	}
	defer c.Close()
	var realSlots, stubSlots uint64
	for _, ns := range c.Nodes() {
		switch ns.Addr {
		case "real":
			realSlots = uint64(ns.Slots)
		case "stub":
			stubSlots = uint64(ns.Slots)
		}
	}

	// First broadcast: every stub slot spends its only credit; the event
	// reaches every slot on both nodes.
	c.Emit(bsym, testRef(1))
	c.Barrier()
	if got := sessionEventSum(srv); got != realSlots {
		t.Fatalf("after first broadcast the real node saw %d events, want %d (one per slot)", got, realSlots)
	}
	if got := stub.events.Load(); got != stubSlots {
		t.Fatalf("after first broadcast the stub saw %d events, want %d", got, stubSlots)
	}

	// Second broadcast: the stub's windows are empty, so the whole
	// broadcast must stall — including the copies for the healthy node.
	done := make(chan struct{})
	go func() {
		c.Emit(bsym, testRef(2))
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("broadcast completed while a slot refused credit")
	case <-time.After(300 * time.Millisecond):
	}
	if got := sessionEventSum(srv); got != realSlots {
		t.Fatalf("refused broadcast leaked to the real node: saw %d events, want still %d", got, realSlots)
	}

	// Replenish the stub windows: the stalled broadcast completes and the
	// event lands everywhere exactly once.
	stub.grant(64)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("broadcast still stalled after credit was granted")
	}
	c.Barrier()
	if got := sessionEventSum(srv); got != 2*realSlots {
		t.Fatalf("after the grant the real node saw %d events, want %d", got, 2*realSlots)
	}
	if got := stub.events.Load(); got != 2*stubSlots {
		t.Fatalf("after the grant the stub saw %d events, want %d", got, 2*stubSlots)
	}
}

// TestOpenValidation pins the Open-time error surface.
func TestOpenValidation(t *testing.T) {
	_, dial := startNodes(t, "n1")
	cases := []struct {
		name string
		opts cluster.Options
	}{
		{"no nodes", cluster.Options{Prop: "UnsafeIter", Creation: monitor.CreateEnable, Dial: dial}},
		{"duplicate nodes", cluster.Options{Prop: "UnsafeIter", Creation: monitor.CreateEnable, Nodes: []string{"n1", "n1"}, Dial: dial}},
		{"both spec forms", cluster.Options{Prop: "UnsafeIter", SpecSource: "x", Creation: monitor.CreateEnable, Nodes: []string{"n1"}, Dial: dial}},
		{"neither spec form", cluster.Options{Creation: monitor.CreateEnable, Nodes: []string{"n1"}, Dial: dial}},
		{"full creation", cluster.Options{Prop: "UnsafeIter", Creation: monitor.CreateFull, Nodes: []string{"n1"}, Dial: dial}},
		{"unknown prop", cluster.Options{Prop: "NoSuchProp", Creation: monitor.CreateEnable, Nodes: []string{"n1"}, Dial: dial}},
	}
	for _, tc := range cases {
		if c, err := cluster.Open(tc.opts); err == nil {
			c.Close()
			t.Errorf("%s: Open accepted", tc.name)
		}
	}
}

// TestMembershipErrors pins the membership error surface on a live client.
func TestMembershipErrors(t *testing.T) {
	_, dial := startNodes(t, "n1")
	c, err := cluster.Open(cluster.Options{
		Prop:     "UnsafeIter",
		GC:       monitor.GCCoenable,
		Creation: monitor.CreateEnable,
		Nodes:    []string{"n1"},
		Dial:     dial,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.AddNode("n1"); err == nil {
		t.Error("AddNode accepted an existing member")
	}
	if err := c.RemoveNode("ghost"); err == nil {
		t.Error("RemoveNode accepted a non-member")
	}
	if err := c.RemoveNode("n1"); err == nil {
		t.Error("RemoveNode removed the last node")
	}
	if len(c.Nodes()) != 1 {
		t.Errorf("membership drifted: %v", c.Nodes())
	}
}
