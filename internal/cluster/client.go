// client.go: Client implements monitor.Runtime over a whole cluster —
// the same contract internal/remote's Client offers for one server, with
// the fanout doing the pivot routing, broadcast, and verdict merging
// underneath. This is what rvgo.WithCluster wraps.
package cluster

import (
	"fmt"
	"net"
	"sync"

	"rvgo/internal/heap"
	"rvgo/internal/logic"
	"rvgo/internal/metrics"
	"rvgo/internal/monitor"
	"rvgo/internal/param"
	"rvgo/internal/props"
	"rvgo/internal/spec"
	"rvgo/internal/wire"
)

// Options configures a cluster session.
type Options struct {
	// Prop names a property from the nodes' built-in library. Exactly one
	// of Prop and SpecSource must be set.
	Prop string
	// SpecSource is .rv specification source compiled by every side; it
	// must define exactly one property.
	SpecSource string
	// GC is the monitor GC policy for every slot session.
	GC monitor.GCPolicy
	// Creation is the monitor creation strategy. Clustering requires
	// CreateEnable (the pivot-binding guarantee comes from it).
	Creation monitor.CreationStrategy
	// Avoid is the creation-avoidance mode for every slot session's
	// engine. Static guards only: profiles do not cross the wire.
	Avoid monitor.AvoidMode
	// Nodes are the rvserve addresses forming the initial membership.
	Nodes []string
	// Seed perturbs the pivot→slot and slot→node hashes. Sessions that
	// must agree on placement (none today) should share it; everyone else
	// can leave it zero.
	Seed uint64
	// Slots is the virtual-shard ring size (0 = default). More slots mean
	// finer rebalancing and smaller handoffs, but more sessions per node.
	Slots int
	// Window caps each slot's event-credit window (0 = node default).
	Window int
	// OnVerdict receives goal verdicts, serialized. It runs on a link
	// reader goroutine and must not call back into the Client.
	OnVerdict func(monitor.Verdict)
	// Dial overrides the transport (tests use in-process pipes).
	Dial func(addr string) (net.Conn, error)
	// Logf receives diagnostic output (nil = silent).
	Logf func(string, ...any)
	// Metrics, when set, interns rv_cluster_* series for this session.
	Metrics *metrics.ClusterSeries
}

// Client is a cluster monitoring session. It implements monitor.Runtime.
type Client struct {
	f    *fanout
	spec *monitor.Spec
	opts Options

	// tmu guards the remote-ID table used to reconstruct verdict
	// instances (same lifetime as internal/remote: entries persist past
	// death so late verdicts keep their original identities).
	tmu   sync.Mutex
	table map[uint64]heap.Ref

	cmu    sync.Mutex
	closed bool
	final  monitor.Stats
}

var _ monitor.Runtime = (*Client)(nil)

// Open resolves the spec and connects every slot session across the
// given nodes.
func Open(opts Options) (*Client, error) {
	local, kind, ref, err := resolveSpec(opts.Prop, opts.SpecSource)
	if err != nil {
		return nil, err
	}
	c := &Client{spec: local, opts: opts, table: map[uint64]heap.Ref{}}
	f, err := newFanout(local, fanoutConfig{
		kind:      kind,
		ref:       ref,
		gc:        opts.GC,
		creation:  opts.Creation,
		avoid:     opts.Avoid,
		nodes:     opts.Nodes,
		seed:      opts.Seed,
		slots:     opts.Slots,
		window:    opts.Window,
		dial:      opts.Dial,
		logf:      opts.Logf,
		met:       opts.Metrics,
		onVerdict: c.deliverVerdict,
	})
	if err != nil {
		return nil, err
	}
	c.f = f
	return c, nil
}

// resolveSpec compiles the client-side copy of the spec.
func resolveSpec(prop, source string) (*monitor.Spec, byte, string, error) {
	switch {
	case prop != "" && source != "":
		return nil, 0, "", fmt.Errorf("cluster: set exactly one of Prop and SpecSource")
	case prop != "":
		s, err := props.Build(prop)
		if err != nil {
			return nil, 0, "", err
		}
		return s, wire.SpecProp, prop, nil
	case source != "":
		s, err := spec.CompileOne(source)
		if err != nil {
			return nil, 0, "", err
		}
		return s, wire.SpecSource, source, nil
	}
	return nil, 0, "", fmt.Errorf("cluster: set one of Prop and SpecSource")
}

// deliverVerdict reconstructs the instance from the client's own refs and
// invokes the handler (the fanout already serializes deliveries).
func (c *Client) deliverVerdict(v wire.Verdict) {
	if c.opts.OnVerdict == nil {
		return
	}
	inst := param.Empty()
	mask := param.Set(v.Mask)
	c.tmu.Lock()
	for k, p := range mask.Members() {
		ref, ok := c.table[v.IDs[k]]
		if !ok {
			ref = ghostRef(v.IDs[k])
		}
		inst = inst.Bind(p, ref)
	}
	c.tmu.Unlock()
	var sym int
	if v.Sym >= 0 && v.Sym < len(c.spec.Events) {
		sym = v.Sym
	}
	c.opts.OnVerdict(monitor.Verdict{
		Spec: c.spec,
		Sym:  sym,
		Cat:  logic.Category(v.Cat),
		Inst: inst,
	})
}

// Err returns the sticky session error, if any. Runtime methods degrade
// to no-ops once it is set.
func (c *Client) Err() error { return c.f.Err() }

// Spec implements monitor.Runtime.
func (c *Client) Spec() *monitor.Spec { return c.spec }

// Emit implements monitor.Runtime.
func (c *Client) Emit(sym int, vals ...heap.Ref) {
	c.Dispatch(sym, param.Of(c.spec.Events[sym].Params, vals...))
}

// EmitNamed implements monitor.Runtime.
func (c *Client) EmitNamed(name string, vals ...heap.Ref) error {
	sym, ok := c.spec.Symbol(name)
	if !ok {
		return fmt.Errorf("cluster: spec %q has no event %q", c.spec.Name, name)
	}
	if want := c.spec.Events[sym].Params.Count(); len(vals) != want {
		return fmt.Errorf("cluster: event %q takes %d values, got %d", name, want, len(vals))
	}
	c.Emit(sym, vals...)
	return nil
}

// Dispatch implements monitor.Runtime. It blocks while the pivot slot's
// credit window — or, for broadcasts, any slot's window — is exhausted.
func (c *Client) Dispatch(sym int, theta param.Instance) {
	ps := c.spec.Events[sym].Params.Members()
	ids := make([]uint64, len(ps))
	c.tmu.Lock()
	for k, p := range ps {
		ref := theta.Value(p)
		id := ref.ID()
		ids[k] = id
		if _, ok := c.table[id]; !ok {
			c.table[id] = ref
		}
	}
	c.tmu.Unlock()
	c.f.Event(sym, ids)
}

// Free implements monitor.Runtime's synchronous death positioning: the
// deaths broadcast to every slot, each of whose nodes barriers its
// backend before applying them.
func (c *Client) Free(refs ...heap.Ref) {
	if len(refs) == 0 {
		return
	}
	ids := make([]uint64, len(refs))
	for k, ref := range refs {
		ids[k] = ref.ID()
	}
	c.f.Free(ids)
}

// FreeAsync implements monitor.Runtime's pipelined death positioning; as
// with the remote client, the positioned point is the free's place in the
// per-slot pipelines, so the local die runs as soon as they are written.
func (c *Client) FreeAsync(die func(), refs ...heap.Ref) {
	c.Free(refs...)
	if die != nil {
		die()
	}
}

// Barrier implements monitor.Runtime: every event dispatched before the
// call has been processed on its node and its verdicts delivered.
func (c *Client) Barrier() { c.f.Barrier() }

// Flush implements monitor.Runtime: a full expunge/compaction pass on
// every node, settling the Figure 10 counters cluster-wide.
func (c *Client) Flush() { c.f.Flush() }

// Stats implements monitor.Runtime: the merged cluster counters. After
// Close it returns the final settled counters.
func (c *Client) Stats() monitor.Stats {
	c.cmu.Lock()
	if c.closed {
		st := c.final
		c.cmu.Unlock()
		return st
	}
	c.cmu.Unlock()
	return c.f.Stats()
}

// Close implements monitor.Runtime: orderly shutdown of every slot
// session; the merged final counters remain available through Stats.
// Close is idempotent.
func (c *Client) Close() {
	c.cmu.Lock()
	if c.closed {
		c.cmu.Unlock()
		return
	}
	c.cmu.Unlock()
	st, _ := c.f.Close()
	c.cmu.Lock()
	c.closed = true
	c.final = st
	c.cmu.Unlock()
}

// AddNode admits a node to the session's membership, migrating the slots
// the rendezvous assignment places on it.
func (c *Client) AddNode(addr string) error { return c.f.AddNode(addr) }

// RemoveNode drains a node and removes it from the membership.
func (c *Client) RemoveNode(addr string) error { return c.f.RemoveNode(addr) }

// Nodes reports the membership and per-node slot counts.
func (c *Client) Nodes() []NodeStatus { return c.f.Nodes() }

// ghostRef stands in for a table miss during verdict reconstruction (a
// verdict naming an object this client never sent).
type ghostRef uint64

func (g ghostRef) ID() uint64    { return uint64(g) }
func (g ghostRef) Alive() bool   { return false }
func (g ghostRef) Label() string { return fmt.Sprintf("r%d", uint64(g)) }
