// fanout.go: the pivot-hashed fanout — one upstream monitoring stream
// spread over N rvserve nodes.
//
// The unit of placement is the slot (a virtual shard): pivot object IDs
// hash onto a fixed ring of slots, and rendezvous hashing assigns each
// slot to a node. Every slot is one ordinary sequential wire session on
// its node, so a slot's slices see exactly the event/death interleaving
// the upstream client produced, and the node's verdict stream for the
// slot is a deterministic function of that interleaving. Events binding
// the spec's pivot parameter route to the pivot's slot; events that do
// not bind the pivot (and all frees) broadcast to every slot — the same
// discipline internal/shard applies in-process, and sound for the same
// reason: under enable-set creation every monitor instance binds the
// pivot, so each slice lives in exactly one slot.
//
// Membership changes move whole slots. Each slot keeps a journal of the
// records it has accepted; moving the slot replays the journal into a
// fresh session on the new owner inside a HandoffBegin/End bracket whose
// Skip count tells the node how many verdicts the upstream already saw
// (the determinism above makes the replayed verdict stream identical, so
// skipping exactly that many forwards delivers precisely the tail a
// crashed donor never sent). Graceful moves additionally check the
// receiver's settled counters against the donor's ByeAck — a free
// end-to-end determinism audit on every rebalance. The journal is the
// durability story and its cost: memory grows with the stream, the price
// of being able to reconstruct any slot on any node at any time.
package cluster

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"rvgo/internal/metrics"
	"rvgo/internal/monitor"
	"rvgo/internal/shard"
	"rvgo/internal/wire"
)

// defaultSlots is the slot-ring size when the caller does not choose one:
// enough granularity to spread over small clusters and to keep handoff
// units (and replay bursts) an order of magnitude smaller than the
// stream, without opening hundreds of sessions per upstream client.
const defaultSlots = 16

// fanoutConfig is the internal wiring for a fanout; Client and Router
// translate their public options into one of these.
type fanoutConfig struct {
	kind     byte   // wire.SpecProp or wire.SpecSource
	ref      string // the property name / .rv source to send downstream
	gc       monitor.GCPolicy
	creation monitor.CreationStrategy
	avoid    monitor.AvoidMode
	nodes    []string
	seed     uint64
	slots    int
	window   int // per-slot credit window request (0 = node default)

	dial func(string) (net.Conn, error)
	logf func(string, ...any)
	met  *metrics.ClusterSeries

	// onVerdict receives merged verdicts; invocations are serialized.
	onVerdict func(wire.Verdict)
	// onHandoff is invoked after each completed slot move with the number
	// of journal records replayed (nil ok).
	onHandoff func(records int)
	// onNodeDown is invoked when a node is evicted from the membership
	// (nil ok). Called with the fanout lock held; must not call back.
	onNodeDown func(addr string)
}

// jrec is one journal record: an event (sym >= 0) or a free (sym < 0).
// Records are immutable once appended; broadcasts share one record across
// all slot journals.
type jrec struct {
	sym int32
	ids []uint64
}

// slotState is one slot: its current session, the full journal of records
// it has accepted, and the send watermark into the current session.
type slotState struct {
	ln *link
	// journal[:sent] has been written to ln's current incarnation; a
	// handoff resets sent to 0 and replays the whole journal.
	journal []jrec
	sent    int
	// verdicts counts verdict forwards delivered upstream from this slot,
	// across all incarnations — the Skip count for the next handoff.
	// Written only by the owning link's reader goroutine.
	verdicts atomic.Uint64
	done     bool // closed with a settled ByeAck; never touched again
}

// fanout is the cluster runtime core shared by Client and Router
// sessions. One coarse mutex serializes the mutating surface (events,
// frees, syncs, membership); link readers — credit, verdicts, acks —
// never take it, which is what keeps the pipeline moving while an
// operation blocks on downstream credit.
type fanout struct {
	spec     *monitor.Spec
	cfg      fanoutConfig
	hello    wire.Hello
	routerID uint64
	pivot    int
	// pivotPos[sym] is the index of the pivot's ID within the event's
	// ascending-parameter ID vector, or -1 when the event must broadcast.
	pivotPos []int

	events atomic.Uint64 // upstream events accepted (broadcasts count once)

	emu sync.Mutex // guards err alone, so Err never waits on an op
	err error

	vmu sync.Mutex // serializes upstream verdict delivery across readers

	mu     sync.Mutex
	nodes  []string
	slots  []*slotState
	held   []bool // broadcast scratch: credits held per slot, under mu
	closed bool
	final  monitor.Stats
}

var fanoutSeq atomic.Uint64

// newFanout compiles nothing — the caller resolved the spec — but
// analyzes it for the pivot, opens every slot session, and leaves the
// fanout ready to route.
func newFanout(spec *monitor.Spec, cfg fanoutConfig) (*fanout, error) {
	if len(cfg.nodes) == 0 {
		return nil, fmt.Errorf("cluster: no nodes")
	}
	seen := map[string]bool{}
	for _, n := range cfg.nodes {
		if seen[n] {
			return nil, fmt.Errorf("cluster: duplicate node %s", n)
		}
		seen[n] = true
	}
	if cfg.creation == monitor.CreateFull {
		return nil, fmt.Errorf("cluster: the full creation strategy requires the sequential backend (only enable-set creation guarantees every monitor binds the pivot)")
	}
	sr, err := shard.NewRouter(spec, 2)
	if err != nil {
		return nil, err
	}
	pivot := sr.Pivot()
	nslots := cfg.slots
	if nslots <= 0 {
		nslots = defaultSlots
	}
	if pivot < 0 {
		// Unshardable spec: a single slot on one node still gives the
		// remote-cluster deployment shape (and handoff) without routing.
		nslots = 1
	}
	if cfg.logf == nil {
		cfg.logf = func(string, ...any) {}
	}
	if cfg.dial == nil {
		cfg.dial = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	if cfg.onVerdict == nil {
		cfg.onVerdict = func(wire.Verdict) {}
	}
	f := &fanout{
		spec:     spec,
		cfg:      cfg,
		routerID: fanoutSeq.Add(1),
		pivot:    pivot,
		pivotPos: make([]int, len(spec.Events)),
		nodes:    append([]string(nil), cfg.nodes...),
		slots:    make([]*slotState, nslots),
		held:     make([]bool, nslots),
		hello: wire.Hello{
			Version:  wire.Version,
			SpecKind: cfg.kind,
			Spec:     cfg.ref,
			GC:       byte(cfg.gc),
			Creation: byte(cfg.creation),
			Avoid:    byte(cfg.avoid),
			Shards:   1, // slot sessions must be sequential: handoff Skip counts rely on a deterministic verdict order
			Window:   uint64(cfg.window),
		},
	}
	for sym, ev := range spec.Events {
		f.pivotPos[sym] = -1
		if pivot >= 0 && ev.Params.Has(pivot) {
			// IDs cross the wire in ascending parameter order; the pivot's
			// position is the number of bound parameters below it.
			f.pivotPos[sym] = (ev.Params & (1<<uint(pivot) - 1)).Count()
		}
	}
	// Construction holds the fanout lock: a link that dies mid-open fires
	// its onDown repair goroutine, which must not walk the half-built slot
	// table until every slot has a link — or, on failure, until the fanout
	// is marked closed so the repair becomes a no-op.
	f.mu.Lock()
	for i := range f.slots {
		f.slots[i] = &slotState{}
		ln, err := f.openSlot(i, f.ownerForLocked(i))
		if err != nil {
			f.closed = true
			for j := 0; j < i; j++ {
				f.slots[j].ln.shutdown()
			}
			f.mu.Unlock()
			return nil, err
		}
		f.slots[i].ln = ln
	}
	f.mu.Unlock()
	if m := cfg.met; m != nil {
		m.Nodes.Set(int64(len(f.nodes)))
		m.Slots.Set(int64(nslots))
	}
	return f, nil
}

// openSlot opens a fresh session for slot i on addr, wiring the verdict
// and failure callbacks.
func (f *fanout) openSlot(i int, addr string) (*link, error) {
	onVerdict := func(v wire.Verdict) {
		// Count, then deliver, both inside the reader's synchronous
		// callback: a node crash can never separate the two, so the
		// counter is exactly the number of verdicts upstream received.
		f.slots[i].verdicts.Add(1)
		if m := f.cfg.met; m != nil {
			m.Verdicts.Inc()
		}
		f.vmu.Lock()
		f.cfg.onVerdict(v)
		f.vmu.Unlock()
	}
	onDown := func(*link) {
		// Reader goroutine; repair needs the fanout lock, so detach. If an
		// operation is already stuck on this link it repairs inline first
		// and this pass finds nothing dirty.
		go f.repair()
	}
	return openLink(f.cfg.dial, addr, f.routerID, i, f.spec, f.hello, onVerdict, onDown)
}

// repair re-homes dead slots from the background failure path.
func (f *fanout) repair() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed || f.errLocked() != nil {
		return
	}
	f.rebalanceLocked()
}

func (f *fanout) errLocked() error {
	f.emu.Lock()
	defer f.emu.Unlock()
	return f.err
}

func (f *fanout) setErr(err error) {
	f.emu.Lock()
	if f.err == nil {
		f.err = err
	}
	f.emu.Unlock()
	f.cfg.logf("cluster: %v", err)
}

// Err returns the sticky fatal error, if any.
func (f *fanout) Err() error {
	f.emu.Lock()
	defer f.emu.Unlock()
	return f.err
}

// member reports addr ∈ nodes. Callers hold mu.
func (f *fanout) memberLocked(addr string) bool {
	for _, n := range f.nodes {
		if n == addr {
			return true
		}
	}
	return false
}

func (f *fanout) removeAddrLocked(addr string) {
	for i, n := range f.nodes {
		if n == addr {
			f.nodes = append(f.nodes[:i], f.nodes[i+1:]...)
			if m := f.cfg.met; m != nil {
				m.Nodes.Set(int64(len(f.nodes)))
			}
			if f.cfg.onNodeDown != nil {
				f.cfg.onNodeDown(addr)
			}
			return
		}
	}
}

// ownerForLocked is the rendezvous (highest-random-weight) assignment of
// a slot to a node: each slot ranks all members by a mixed hash and picks
// the max, so a membership change moves only the slots whose winner
// changed — no global reshuffle.
func (f *fanout) ownerForLocked(slot int) string {
	h := shard.Mix(uint64(slot) ^ f.cfg.seed)
	best, bw := "", uint64(0)
	for _, n := range f.nodes {
		w := shard.Mix(hashAddr(n) ^ h)
		if best == "" || w > bw || (w == bw && n < best) {
			best, bw = n, w
		}
	}
	return best
}

// hashAddr is FNV-1a 64 over the node address.
func hashAddr(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// slotOf maps a pivot object ID to its slot. The mapping depends only on
// the ring size and seed — never on membership — so slices keep their
// slot identity across joins and leaves.
func (f *fanout) slotOf(id uint64) int {
	if len(f.slots) == 1 {
		return 0
	}
	return int(shard.Mix(id^f.cfg.seed) % uint64(len(f.slots)))
}

// rebalanceLocked drives the slot assignment back to the rendezvous
// ideal: every slot that is dead, or whose owner is no longer the
// rendezvous winner, is moved — gracefully when the donor still answers
// (Bye, verify counters), by journal replay alone when it crashed. A
// target that fails mid-move is evicted and the loop re-runs until the
// assignment is clean or no nodes remain.
func (f *fanout) rebalanceLocked() error {
	for {
		if err := f.errLocked(); err != nil {
			return err
		}
		if len(f.nodes) == 0 {
			err := fmt.Errorf("cluster: all nodes lost")
			f.setErr(err)
			f.releaseAllLocked()
			return err
		}
		dirty := -1
		for i, s := range f.slots {
			if s.done {
				continue
			}
			if s.ln.dead() || s.ln.addr != f.ownerForLocked(i) {
				dirty = i
				break
			}
		}
		if dirty < 0 {
			return nil
		}
		s := f.slots[dirty]
		var donor *wire.Stats
		if !s.ln.dead() && f.memberLocked(s.ln.addr) {
			// Live donor: orderly Bye settles the slot and yields the
			// counters the replayed copy must reproduce.
			if st, ok := s.ln.close(); ok {
				donor = &st
			}
		} else {
			s.ln.shutdown()
		}
		target := f.ownerForLocked(dirty)
		ok, err := f.moveSlotLocked(dirty, target, donor)
		if err != nil {
			f.setErr(err)
			return err
		}
		if !ok {
			f.cfg.logf("cluster: node %s lost during slot %d handoff", target, dirty)
			f.removeAddrLocked(target)
		}
	}
}

// moveSlotLocked rebuilds slot i on addr by journal replay. ok=false
// means the target failed (retry elsewhere); a non-nil error is fatal
// (determinism audit failure). On success the slot's watermark covers the
// whole journal and the node has flushed — the slot is settled.
func (f *fanout) moveSlotLocked(i int, addr string, donor *wire.Stats) (ok bool, err error) {
	s := f.slots[i]
	skip := s.verdicts.Load()
	ln, lerr := f.openSlot(i, addr)
	if lerr != nil {
		return false, nil
	}
	s.ln = ln
	s.sent = 0
	if !ln.handoffBegin(skip) {
		return false, nil
	}
	for _, rec := range s.journal {
		if rec.sym >= 0 {
			if spent, _ := ln.spendCredit(); !spent {
				return false, nil
			}
			if !ln.event(int(rec.sym), rec.ids) {
				return false, nil
			}
		} else if !ln.free(rec.ids) {
			return false, nil
		}
	}
	st, acked := ln.handoffEnd()
	if !acked {
		return false, nil
	}
	s.sent = len(s.journal)
	if donor != nil && !statsEqual(st, *donor) {
		return false, fmt.Errorf("cluster: slot %d handoff to %s diverged: donor settled %+v, replay settled %+v", i, addr, *donor, st)
	}
	if f.cfg.onHandoff != nil {
		f.cfg.onHandoff(len(s.journal))
	}
	if m := f.cfg.met; m != nil {
		m.Handoffs.Inc()
		m.HandoffRecords.Add(uint64(len(s.journal)))
	}
	f.cfg.logf("cluster: slot %d moved to %s (%d records, skip %d)", i, addr, len(s.journal), skip)
	return true, nil
}

// releaseAllLocked abandons every remaining link after a fatal error so
// no reader goroutine outlives the fanout.
func (f *fanout) releaseAllLocked() {
	for _, s := range f.slots {
		if !s.done {
			s.ln.shutdown()
		}
	}
}

func statsEqual(a, b wire.Stats) bool {
	a.Token, b.Token = 0, 0
	return a == b
}

// Event accepts one upstream event. Pivot-binding events route to the
// pivot's slot; the rest broadcast under the all-or-nothing credit
// discipline: one credit is acquired from every slot before any frame is
// written, so a single refusing node withholds the entire broadcast — and
// with it the upstream credit the caller would have replenished.
func (f *fanout) Event(sym int, ids []uint64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil
	}
	if err := f.errLocked(); err != nil {
		return err
	}
	f.events.Add(1)
	rec := jrec{sym: int32(sym), ids: append([]uint64(nil), ids...)}
	if pp := f.pivotPos[sym]; pp >= 0 && len(f.slots) > 1 {
		i := f.slotOf(ids[pp])
		s := f.slots[i]
		s.journal = append(s.journal, rec)
		if err := f.pumpLocked(i); err != nil {
			return err
		}
		if m := f.cfg.met; m != nil {
			m.Events.Inc()
		}
		return nil
	}
	for _, s := range f.slots {
		s.journal = append(s.journal, rec)
	}
	if err := f.broadcastPumpLocked(); err != nil {
		return err
	}
	if m := f.cfg.met; m != nil {
		m.Broadcasts.Inc()
	}
	return nil
}

// Free broadcasts object deaths to every slot. Frees are credit-exempt
// (they shrink node state) but journaled like events: replay must
// reproduce the exact event/death interleaving.
func (f *fanout) Free(ids []uint64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil
	}
	if err := f.errLocked(); err != nil {
		return err
	}
	rec := jrec{sym: -1, ids: append([]uint64(nil), ids...)}
	for _, s := range f.slots {
		s.journal = append(s.journal, rec)
	}
	for i := range f.slots {
		if err := f.pumpLocked(i); err != nil {
			return err
		}
	}
	if m := f.cfg.met; m != nil {
		m.Frees.Inc()
	}
	return nil
}

// pumpLocked writes slot i's unsent journal suffix to its current link,
// re-homing (which itself replays the suffix) on link death.
func (f *fanout) pumpLocked(i int) error {
	s := f.slots[i]
	for s.sent < len(s.journal) {
		rec := s.journal[s.sent]
		ok := true
		if rec.sym >= 0 {
			spent, stalled := s.ln.spendCredit()
			if stalled {
				if m := f.cfg.met; m != nil {
					m.CreditStalls.Inc()
				}
			}
			ok = spent && s.ln.event(int(rec.sym), rec.ids)
		} else {
			ok = s.ln.free(rec.ids)
		}
		if ok {
			s.sent++
			continue
		}
		if err := f.rebalanceLocked(); err != nil {
			return err
		}
	}
	return nil
}

// broadcastPumpLocked delivers the freshly appended broadcast record to
// every slot, acquiring one credit from each before writing to any.
func (f *fanout) broadcastPumpLocked() error {
	// Phase 0: slots already behind by more than this record (a prior
	// failure) catch up first, so each slot is at most one record short.
	for i, s := range f.slots {
		if s.sent < len(s.journal)-1 {
			if err := f.pumpAllButLastLocked(i); err != nil {
				return err
			}
		}
	}
	// Phase 1: acquire everywhere before writing anywhere. A dead link
	// triggers a rebalance whose replay delivers the record to the
	// re-homed slots; the retry loop keeps track of credits already held
	// so a live slot never pays twice.
	held := f.held[:0]
	for range f.slots {
		held = append(held, false)
	}
	for {
		allLive := true
		for i, s := range f.slots {
			if s.sent == len(s.journal) {
				// Delivered by a handoff replay (which pays its own way);
				// any credit held from an earlier pass goes back.
				if held[i] {
					s.ln.refundCredit()
					held[i] = false
				}
				continue
			}
			if held[i] {
				continue
			}
			spent, stalled := s.ln.spendCredit()
			if stalled {
				if m := f.cfg.met; m != nil {
					m.CreditStalls.Inc()
				}
			}
			if spent {
				held[i] = true
			} else {
				allLive = false
				s.ln.refundCredit() // flooded token from a dead window
			}
		}
		if allLive {
			break
		}
		if err := f.rebalanceLocked(); err != nil {
			return err
		}
	}
	// Phase 2: write the record everywhere the replay did not.
	failed := false
	for i, s := range f.slots {
		if s.sent == len(s.journal) {
			if held[i] {
				s.ln.refundCredit()
			}
			continue
		}
		rec := s.journal[s.sent]
		if s.ln.event(int(rec.sym), rec.ids) {
			s.sent++
		} else {
			failed = true
		}
	}
	if failed {
		return f.rebalanceLocked()
	}
	return nil
}

// pumpAllButLastLocked drains slot i's backlog up to (not including) the
// final journal record.
func (f *fanout) pumpAllButLastLocked(i int) error {
	s := f.slots[i]
	for s.sent < len(s.journal)-1 {
		rec := s.journal[s.sent]
		ok := true
		if rec.sym >= 0 {
			spent, _ := s.ln.spendCredit()
			ok = spent && s.ln.event(int(rec.sym), rec.ids)
		} else {
			ok = s.ln.free(rec.ids)
		}
		if ok {
			s.sent++
			continue
		}
		if err := f.rebalanceLocked(); err != nil {
			return err
		}
	}
	return nil
}

// Barrier settles every slot: when it returns, every verdict caused by
// previously accepted events has been delivered upstream (each slot's
// BarrierAck is ordered behind its verdicts, and the link reader delivers
// verdicts before completing the ack).
func (f *fanout) Barrier() error { return f.syncAll((*link).barrier) }

// Flush additionally retires pending parameter deaths on every node.
func (f *fanout) Flush() error { return f.syncAll((*link).flush) }

func (f *fanout) syncAll(op func(*link) bool) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil
	}
	for {
		if err := f.errLocked(); err != nil {
			return err
		}
		clean := true
		for _, s := range f.slots {
			if !s.done && !op(s.ln) {
				clean = false
				break
			}
		}
		if clean {
			return nil
		}
		if err := f.rebalanceLocked(); err != nil {
			return err
		}
	}
}

// Stats merges the per-slot counters. Events is the fanout's own count —
// a broadcast is one upstream event however many slots stepped on it —
// while the engine-side counters sum exactly: each slice lives in one
// slot, so no step, creation, or verdict is double-counted.
func (f *fanout) Stats() monitor.Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return f.final
	}
	for {
		if f.errLocked() != nil {
			return monitor.Stats{Events: f.events.Load()}
		}
		agg := monitor.Stats{Events: f.events.Load()}
		clean := true
		for _, s := range f.slots {
			if s.done {
				continue
			}
			st, ok := s.ln.stats()
			if !ok {
				clean = false
				break
			}
			addWireStats(&agg, st)
		}
		if clean {
			return agg
		}
		if err := f.rebalanceLocked(); err != nil {
			return monitor.Stats{Events: f.events.Load()}
		}
	}
}

// Close settles every slot with an orderly Bye and merges the final
// counters. Slots whose node crashed at the worst moment are re-homed
// first so the final numbers are exact whenever any node survives.
func (f *fanout) Close() (monitor.Stats, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return f.final, f.errLocked()
	}
	agg := monitor.Stats{Events: f.events.Load()}
	for {
		if err := f.errLocked(); err != nil {
			f.closed = true
			f.final = agg
			f.releaseAllLocked()
			return agg, err
		}
		pending := false
		for _, s := range f.slots {
			if s.done {
				continue
			}
			st, ok := s.ln.close()
			if !ok {
				pending = true
				break
			}
			addWireStats(&agg, st)
			s.done = true
		}
		if !pending {
			break
		}
		if err := f.rebalanceLocked(); err != nil {
			f.closed = true
			f.final = agg
			f.releaseAllLocked()
			return agg, err
		}
	}
	f.closed = true
	f.final = agg
	return agg, nil
}

// Nodes reports the current membership and how many slots each member
// owns (by the slots' live sessions, not the rendezvous ideal).
func (f *fanout) Nodes() []NodeStatus {
	f.mu.Lock()
	defer f.mu.Unlock()
	counts := map[string]int{}
	for _, n := range f.nodes {
		counts[n] = 0
	}
	for _, s := range f.slots {
		if !s.done && s.ln != nil {
			counts[s.ln.addr]++
		}
	}
	out := make([]NodeStatus, 0, len(f.nodes))
	for _, n := range f.nodes {
		out = append(out, NodeStatus{Addr: n, Slots: counts[n]})
	}
	return out
}

// NodeStatus describes one cluster member.
type NodeStatus struct {
	Addr  string `json:"addr"`
	Slots int    `json:"slots"` // slots whose live session it hosts
}

// AddNode admits a node to the membership and gracefully migrates the
// slots the rendezvous assignment now places on it.
func (f *fanout) AddNode(addr string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return fmt.Errorf("cluster: closed")
	}
	if err := f.errLocked(); err != nil {
		return err
	}
	if f.memberLocked(addr) {
		return fmt.Errorf("cluster: %s is already a member", addr)
	}
	f.nodes = append(f.nodes, addr)
	if m := f.cfg.met; m != nil {
		m.Nodes.Set(int64(len(f.nodes)))
	}
	return f.rebalanceLocked()
}

// RemoveNode drains a member: its slots move gracefully (Bye, verified
// replay) to the survivors, then the address leaves the membership.
func (f *fanout) RemoveNode(addr string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return fmt.Errorf("cluster: closed")
	}
	if err := f.errLocked(); err != nil {
		return err
	}
	if !f.memberLocked(addr) {
		return fmt.Errorf("cluster: %s is not a member", addr)
	}
	if len(f.nodes) == 1 {
		return fmt.Errorf("cluster: cannot remove the last node")
	}
	f.removeAddrLocked(addr)
	return f.rebalanceLocked()
}

func addWireStats(agg *monitor.Stats, st wire.Stats) {
	agg.Created += st.Created
	agg.Flagged += st.Flagged
	agg.Collected += st.Collected
	agg.GoalVerdicts += st.GoalVerdicts
	agg.Steps += st.Steps
	agg.Avoided += st.Avoided
	agg.Live += st.Live
	agg.PeakLive += st.PeakLive
}
