package cluster_test

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"rvgo/internal/cluster"
	"rvgo/internal/monitor"
	"rvgo/internal/props"
	"rvgo/internal/remote"
	"rvgo/internal/shard"
)

// TestRouterStatusz drives a session through a two-node router, kills the
// node hosting slots, and checks the introspection surface the CI cluster
// smoke scripts against: node health flips, handoff counters move, and
// /statusz serves the same document over HTTP.
func TestRouterStatusz(t *testing.T) {
	nodes, dial := startNodes(t, "a", "b")
	rtr, err := cluster.NewRouter(cluster.RouterOptions{
		Nodes: []string{"a", "b"},
		Dial:  dial,
		Probe: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go rtr.Serve(l)
	t.Cleanup(func() { rtr.Shutdown(time.Second) })

	spec, err := props.Build("UnsafeIter")
	if err != nil {
		t.Fatal(err)
	}
	sr, err := shard.NewRouter(spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	bsym := -1
	for sym, ev := range spec.Events {
		if !ev.Params.Has(sr.Pivot()) {
			bsym = sym
			break
		}
	}

	cl, err := remote.Dial(l.Addr().String(), remote.Options{
		Prop:     "UnsafeIter",
		GC:       monitor.GCCoenable,
		Creation: monitor.CreateEnable,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.Emit(bsym, testRef(1))
	cl.Barrier()

	st := rtr.Statusz()
	if st.Active != 1 || len(st.Sessions) != 1 {
		t.Fatalf("Statusz sessions = %d active, %d listed; want 1", st.Active, len(st.Sessions))
	}
	if st.Events == 0 {
		t.Error("Statusz.Events is zero after an accepted event")
	}
	if len(st.Nodes) != 2 || !st.Nodes[0].Healthy || !st.Nodes[1].Healthy {
		t.Fatalf("Statusz.Nodes = %+v, want both healthy", st.Nodes)
	}

	// Kill whichever node hosts slots, forcing a crash handoff onto the
	// survivor.
	victim := ""
	for _, ns := range st.Sessions[0].Nodes {
		if ns.Slots > 0 {
			victim = ns.Addr
			break
		}
	}
	if victim == "" {
		t.Fatalf("no node hosts slots: %+v", st.Sessions[0].Nodes)
	}
	nodes[victim].kill()
	cl.Emit(bsym, testRef(2))
	cl.Barrier() // settles only after every slot is re-homed and live

	st = rtr.Statusz()
	if st.Handoffs == 0 || st.HandoffRecords == 0 {
		t.Errorf("after killing %s: Handoffs = %d, HandoffRecords = %d; want both nonzero", victim, st.Handoffs, st.HandoffRecords)
	}
	for _, n := range st.Nodes {
		if n.Addr == victim && n.Healthy {
			t.Errorf("killed node %s still reported healthy", victim)
		}
	}

	// The same document over HTTP.
	web := httptest.NewServer(rtr.DebugHandler())
	defer web.Close()
	resp, err := http.Get(web.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc cluster.Statusz
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Handoffs != st.Handoffs || len(doc.Nodes) != 2 {
		t.Errorf("/statusz = %+v, want handoffs %d over 2 nodes", doc, st.Handoffs)
	}
	resp, err = http.Get(web.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/metrics: %s", resp.Status)
	}
}
