package cluster

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"sort"
	"time"

	"rvgo/internal/metrics"
)

// Statusz is the JSON document served at the router's /statusz: the
// aggregate, node health, every ready session with its slot placement,
// and the full metrics snapshot. Field names are a stable contract for
// scripts (the CI cluster smoke asserts on nodes and handoffs).
type Statusz struct {
	UptimeSec      float64                  `json:"uptime_sec"`
	Active         int                      `json:"active_sessions"`
	Total          uint64                   `json:"total_sessions"`
	Events         uint64                   `json:"events"`
	Verdicts       uint64                   `json:"verdicts"`
	Handoffs       uint64                   `json:"handoffs"`
	HandoffRecords uint64                   `json:"handoff_records"`
	Nodes          []NodeHealth             `json:"nodes"`
	Sessions       []RouterSessionStatus    `json:"sessions"`
	Metrics        []metrics.FamilySnapshot `json:"metrics"`
}

// NodeHealth is one configured node's health state.
type NodeHealth struct {
	Addr    string `json:"addr"`
	Healthy bool   `json:"healthy"`
}

// RouterSessionStatus is one active session's point-in-time state.
type RouterSessionStatus struct {
	ID        uint64       `json:"id"`
	Tenant    string       `json:"tenant"`
	Window    int          `json:"window"`
	Events    uint64       `json:"events"`
	UptimeSec float64      `json:"uptime_sec"`
	Nodes     []NodeStatus `json:"nodes"`
}

// Statusz assembles the snapshot. Session slot placement takes each
// fanout's lock briefly; everything else reads atomics.
func (r *Router) Statusz() Statusz {
	out := Statusz{
		UptimeSec:      time.Since(r.started).Seconds(),
		Total:          r.accepted.Load(),
		Events:         r.events.Load(),
		Verdicts:       r.verdicts.Load(),
		Handoffs:       r.handoffs.Load(),
		HandoffRecords: r.handoffRecords.Load(),
	}
	r.mu.Lock()
	out.Active = len(r.sessions)
	for _, n := range r.opts.Nodes {
		out.Nodes = append(out.Nodes, NodeHealth{Addr: n, Healthy: r.health[n]})
	}
	live := make([]*rsession, 0, len(r.sessions))
	for s := range r.sessions {
		live = append(live, s)
	}
	r.mu.Unlock()
	for _, s := range live {
		if !s.ready.Load() {
			continue
		}
		out.Sessions = append(out.Sessions, RouterSessionStatus{
			ID:        s.id,
			Tenant:    s.tenant,
			Window:    s.window,
			Events:    s.events.Load(),
			UptimeSec: time.Since(s.opened).Seconds(),
			Nodes:     s.f.Nodes(),
		})
	}
	sort.Slice(out.Sessions, func(a, b int) bool { return out.Sessions[a].ID < out.Sessions[b].ID })
	out.Metrics = r.reg.Snapshot()
	return out
}

// DebugHandler returns the router's introspection surface, for serving on
// a side listener (rvserve -cluster -metrics):
//
//	/metrics        Prometheus text exposition (rv_cluster_* families)
//	/statusz        the Statusz JSON snapshot
//	/debug/pprof/*  the standard Go profiling endpoints
func (r *Router) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.reg.WriteProm(w)
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(r.Statusz())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
