// router.go: the router tier — a wire-protocol server whose backend is a
// fanout. A monitored program speaks the ordinary single-server protocol
// to the router (internal/remote.Client works unchanged); the router
// pivot-hashes the stream across the nodes, merges verdicts and counters
// back, and heals around node failures with journal-replay handoffs, all
// invisible to the upstream session.
//
// Credit is end-to-end: the router replenishes an upstream credit only
// after the fanout has placed the event — which for a broadcast means
// every slot granted a credit. One refusing node therefore stalls the
// upstream producer exactly as a slow single server would.
package cluster

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"rvgo/internal/metrics"
	"rvgo/internal/monitor"
	"rvgo/internal/wire"
)

// RouterOptions configures a Router.
type RouterOptions struct {
	// Nodes are the rvserve addresses the router spreads sessions over.
	Nodes []string
	// Seed perturbs the pivot→slot and slot→node hashes.
	Seed uint64
	// Slots is the per-session virtual-shard ring size (0 = default).
	Slots int
	// Window is the upstream event-credit window granted to each session
	// (default 4096). A client may request a smaller one in its Hello.
	Window int
	// NodeWindow caps each downstream slot window (0 = node default).
	NodeWindow int
	// Probe is the health re-probe interval for unhealthy nodes (default
	// 1s). A revived node is re-admitted into every active session.
	Probe time.Duration
	// Dial overrides the node transport (tests use in-process pipes).
	Dial func(addr string) (net.Conn, error)
	// Logf, when non-nil, receives one line per lifecycle event.
	Logf func(format string, args ...any)
}

// Router accepts and runs cluster-routed monitoring sessions.
type Router struct {
	opts RouterOptions

	mu       sync.Mutex
	listener net.Listener
	sessions map[*rsession]struct{}
	nextID   uint64
	draining bool
	health   map[string]bool

	wg        sync.WaitGroup
	probeDone chan struct{}

	// Aggregate counters across all sessions, past and present.
	events         atomic.Uint64
	verdicts       atomic.Uint64
	accepted       atomic.Uint64
	handoffs       atomic.Uint64
	handoffRecords atomic.Uint64

	reg     *metrics.Registry
	started time.Time
}

// NewRouter builds a router over a fixed node set.
func NewRouter(opts RouterOptions) (*Router, error) {
	if len(opts.Nodes) == 0 {
		return nil, fmt.Errorf("cluster: router needs at least one node")
	}
	if opts.Window <= 0 {
		opts.Window = 4096
	}
	if opts.Probe <= 0 {
		opts.Probe = time.Second
	}
	if opts.Dial == nil {
		opts.Dial = func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, 5*time.Second)
		}
	}
	r := &Router{
		opts:     opts,
		sessions: map[*rsession]struct{}{},
		health:   map[string]bool{},
		reg:      metrics.NewRegistry(),
		started:  time.Now(),
	}
	for _, n := range opts.Nodes {
		r.health[n] = true
	}
	return r, nil
}

// Metrics returns the router's metrics registry.
func (r *Router) Metrics() *metrics.Registry { return r.reg }

func (r *Router) logf(format string, args ...any) {
	if r.opts.Logf != nil {
		r.opts.Logf(format, args...)
	}
}

// healthyNodes snapshots the addresses currently believed up, in the
// configured order (placement must not depend on map iteration).
func (r *Router) healthyNodes() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.opts.Nodes))
	for _, n := range r.opts.Nodes {
		if r.health[n] {
			out = append(out, n)
		}
	}
	return out
}

// markDown records a node eviction reported by a session's fanout. Called
// with that fanout's lock held; takes only the router lock (the router
// never holds its lock while calling into a fanout).
func (r *Router) markDown(addr string) {
	r.mu.Lock()
	was := r.health[addr]
	r.health[addr] = false
	r.mu.Unlock()
	if was {
		r.logf("router: node %s marked down", addr)
	}
}

// probeNode reports whether addr currently accepts connections.
func (r *Router) probeNode(addr string) bool {
	conn, err := r.opts.Dial(addr)
	if err != nil {
		return false
	}
	conn.Close()
	return true
}

// probeLoop re-probes unhealthy nodes and re-admits revived ones into
// every active session's membership.
func (r *Router) probeLoop() {
	defer close(r.probeDone)
	tick := time.NewTicker(r.opts.Probe)
	defer tick.Stop()
	for {
		<-tick.C
		r.mu.Lock()
		if r.draining {
			r.mu.Unlock()
			return
		}
		var down []string
		for _, n := range r.opts.Nodes {
			if !r.health[n] {
				down = append(down, n)
			}
		}
		r.mu.Unlock()
		for _, addr := range down {
			if !r.probeNode(addr) {
				continue
			}
			r.mu.Lock()
			r.health[addr] = true
			live := make([]*rsession, 0, len(r.sessions))
			for s := range r.sessions {
				live = append(live, s)
			}
			r.mu.Unlock()
			r.logf("router: node %s revived", addr)
			for _, s := range live {
				if s.ready.Load() {
					if err := s.f.AddNode(addr); err != nil {
						r.logf("router: session %d: re-admitting %s: %v", s.id, addr, err)
					}
				}
			}
		}
	}
}

// Serve accepts sessions on l until the listener is closed by Shutdown.
func (r *Router) Serve(l net.Listener) error {
	r.mu.Lock()
	if r.draining {
		r.mu.Unlock()
		return errors.New("cluster: Serve after Shutdown")
	}
	r.listener = l
	if r.probeDone == nil {
		r.probeDone = make(chan struct{})
		go r.probeLoop()
	}
	r.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			r.mu.Lock()
			draining := r.draining
			r.mu.Unlock()
			if draining || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		r.mu.Lock()
		if r.draining {
			r.mu.Unlock()
			conn.Close()
			return nil
		}
		r.nextID++
		sess := &rsession{rtr: r, id: r.nextID, conn: conn}
		r.sessions[sess] = struct{}{}
		r.accepted.Add(1)
		r.wg.Add(1)
		r.mu.Unlock()
		go func() {
			defer r.wg.Done()
			sess.run()
			r.mu.Lock()
			delete(r.sessions, sess)
			r.mu.Unlock()
		}()
	}
}

// Shutdown drains the router: stop accepting, wait up to timeout for
// sessions to finish, then force-close stragglers.
func (r *Router) Shutdown(timeout time.Duration) {
	r.mu.Lock()
	r.draining = true
	l := r.listener
	probing := r.probeDone
	r.mu.Unlock()
	if l != nil {
		l.Close()
	}
	done := make(chan struct{})
	go func() {
		r.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(timeout):
		r.mu.Lock()
		for sess := range r.sessions {
			sess.conn.Close()
		}
		r.mu.Unlock()
		<-done
	}
	if probing != nil {
		<-probing
	}
}

// Close force-closes the listener and every active session.
func (r *Router) Close() { r.Shutdown(0) }

// rsession is one upstream connection: the protocol surface of a server
// session, the routing machinery of a fanout.
type rsession struct {
	rtr  *Router
	id   uint64
	conn net.Conn

	wmu sync.Mutex
	w   *wire.Writer

	f    *fanout
	spec *specInfo

	window  int
	ungrant int

	tenant string
	opened time.Time
	ready  atomic.Bool
	events atomic.Uint64
}

// specInfo is the slice of the compiled spec the ingest path needs for
// validation (the fanout holds the full spec).
type specInfo struct {
	name   string
	arity  []int
	events int
}

// run executes the session to completion.
func (s *rsession) run() {
	defer s.conn.Close()
	defer func() {
		if s.f != nil {
			s.f.Close()
		}
	}()
	r := wire.NewReader(s.conn)
	s.w = wire.NewWriter(s.conn)

	var msg wire.Msg
	if err := r.Next(&msg); err != nil {
		s.rtr.logf("session %d: reading hello: %v", s.id, err)
		return
	}
	if msg.Type != wire.THello {
		s.fail("expected Hello, got message type %d", msg.Type)
		return
	}
	if err := s.handshake(msg.Hello); err != nil {
		s.fail("%v", err)
		return
	}
	s.rtr.logf("session %d: open spec=%s nodes=%d window=%d", s.id, s.tenant, len(s.f.Nodes()), s.window)

	for {
		if err := r.Next(&msg); err != nil {
			if err != io.EOF {
				s.rtr.logf("session %d: read: %v", s.id, err)
			}
			return
		}
		for {
			stop, err := s.handle(&msg)
			if err != nil {
				s.fail("%v", err)
				return
			}
			if stop {
				return
			}
			if !r.FrameBuffered() {
				break
			}
			if err := r.Next(&msg); err != nil {
				if err != io.EOF {
					s.rtr.logf("session %d: read: %v", s.id, err)
				}
				return
			}
		}
		if s.ungrant > 0 {
			if err := s.grantCredit(); err != nil {
				return
			}
		}
	}
}

// handshake validates the Hello and builds the fanout over the currently
// healthy nodes (after a synchronous re-probe when the first attempt
// fails — a router must not refuse sessions because one node is down).
func (s *rsession) handshake(h wire.Hello) error {
	if h.Version != wire.Version {
		return fmt.Errorf("protocol version %d not supported (router speaks %d)", h.Version, wire.Version)
	}
	if h.Shards > 1 {
		return fmt.Errorf("cluster router shards by pivot across nodes; request Shards<=1 (got %d)", h.Shards)
	}
	var prop, source string
	switch h.SpecKind {
	case wire.SpecProp:
		prop = h.Spec
	case wire.SpecSource:
		source = h.Spec
	default:
		return fmt.Errorf("unknown spec kind %d", h.SpecKind)
	}
	compiled, kind, ref, err := resolveSpec(prop, source)
	if err != nil {
		return err
	}
	window := s.rtr.opts.Window
	if h.Window > 0 && int(h.Window) < window {
		window = int(h.Window)
	}

	gc := monitor.GCPolicy(h.GC)
	if gc < monitor.GCNone || gc > monitor.GCCoenable {
		return fmt.Errorf("unknown GC policy %d", h.GC)
	}
	creation := monitor.CreationStrategy(h.Creation)
	if creation != monitor.CreateEnable && creation != monitor.CreateFull {
		return fmt.Errorf("unknown creation strategy %d", h.Creation)
	}
	cfg := fanoutConfig{
		kind:     kind,
		ref:      ref,
		gc:       gc,
		creation: creation,
		seed:     s.rtr.opts.Seed,
		slots:    s.rtr.opts.Slots,
		window:   s.rtr.opts.NodeWindow,
		dial:     s.rtr.opts.Dial,
		logf:     s.rtr.logf,
		met:      metrics.NewClusterSeries(s.rtr.reg, compiled.Name),
		onVerdict: func(v wire.Verdict) {
			// IDs pass through untouched: the nodes echo the very IDs the
			// upstream client chose, so no translation table is needed.
			s.rtr.verdicts.Add(1)
			s.writeLocked(func() error { return s.w.WriteVerdict(v) })
		},
		onHandoff: func(records int) {
			s.rtr.handoffs.Add(1)
			s.rtr.handoffRecords.Add(uint64(records))
		},
		onNodeDown: s.rtr.markDown,
	}
	cfg.nodes = s.rtr.healthyNodes()
	f, err := newFanout(compiled, cfg)
	if err != nil {
		// Refresh the health map the hard way and retry once: the failed
		// open is itself the probe.
		for _, n := range s.rtr.opts.Nodes {
			up := s.rtr.probeNode(n)
			s.rtr.mu.Lock()
			s.rtr.health[n] = up
			s.rtr.mu.Unlock()
		}
		cfg.nodes = s.rtr.healthyNodes()
		if len(cfg.nodes) == 0 {
			return fmt.Errorf("cluster: no healthy nodes")
		}
		f, err = newFanout(compiled, cfg)
		if err != nil {
			return err
		}
	}
	s.f = f
	s.spec = &specInfo{name: compiled.Name, events: len(compiled.Events)}
	for _, ev := range compiled.Events {
		s.spec.arity = append(s.spec.arity, ev.Params.Count())
	}
	s.window = window
	s.tenant = compiled.Name
	s.opened = time.Now()
	s.ready.Store(true)

	ack := wire.HelloAck{
		Session:  s.id,
		Window:   uint64(window),
		SpecName: compiled.Name,
		Params:   compiled.Params,
	}
	for _, ev := range compiled.Events {
		ack.Events = append(ack.Events, wire.EventDef{Name: ev.Name, Params: uint64(ev.Params)})
	}
	return s.writeLocked(func() error { return s.w.WriteHelloAck(ack) })
}

// handle processes one decoded frame.
func (s *rsession) handle(msg *wire.Msg) (stop bool, err error) {
	switch msg.Type {
	case wire.TEvent:
		ev := msg.Event
		if ev.Sym < 0 || ev.Sym >= s.spec.events {
			return false, fmt.Errorf("event symbol %d out of range (spec %s has %d events)", ev.Sym, s.spec.name, s.spec.events)
		}
		if len(ev.IDs) != s.spec.arity[ev.Sym] {
			return false, fmt.Errorf("event %d takes %d objects, got %d", ev.Sym, s.spec.arity[ev.Sym], len(ev.IDs))
		}
		if err := s.f.Event(ev.Sym, ev.IDs); err != nil {
			return false, err
		}
		s.events.Add(1)
		s.rtr.events.Add(1)
		s.ungrant++
		if s.ungrant >= s.window/2 || s.window < 2 {
			return false, s.grantCredit()
		}
	case wire.TFree:
		if err := s.f.Free(msg.Free.IDs); err != nil {
			return false, err
		}
	case wire.TBarrier:
		if err := s.f.Barrier(); err != nil {
			return false, err
		}
		s.writeLocked(func() error { return s.w.WriteSync(wire.TBarrierAck, msg.Sync.Token) })
	case wire.TFlush:
		if err := s.f.Flush(); err != nil {
			return false, err
		}
		s.writeLocked(func() error { return s.w.WriteSync(wire.TFlushAck, msg.Sync.Token) })
	case wire.TStatsReq:
		st := s.f.Stats()
		if err := s.f.Err(); err != nil {
			return false, err
		}
		token := msg.Sync.Token
		s.writeLocked(func() error { return s.w.WriteStats(toWireStats(token, st)) })
	case wire.TBye:
		st, err := s.f.Close()
		if err != nil {
			return false, err
		}
		s.writeLocked(func() error { return s.w.WriteByeAck(wire.ByeAck{Stats: toWireStats(0, st)}) })
		s.rtr.logf("session %d: closed after %d events", s.id, s.events.Load())
		return true, nil
	default:
		return false, fmt.Errorf("unexpected message type %d", msg.Type)
	}
	return false, nil
}

// grantCredit flushes the accumulated event credit upstream.
func (s *rsession) grantCredit() error {
	n := uint64(s.ungrant)
	if n == 0 {
		return nil
	}
	s.ungrant = 0
	return s.writeLocked(func() error { return s.w.WriteCredit(n) })
}

// fail sends a fatal Error frame and logs; the caller closes the session.
func (s *rsession) fail(format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	s.rtr.logf("session %d: %s", s.id, msg)
	s.writeLocked(func() error { return s.w.WriteError(msg) })
}

// writeLocked runs one or more frame writes under the write mutex and
// flushes (verdict forwards from link readers and protocol acks from the
// session goroutine must never interleave mid-frame).
func (s *rsession) writeLocked(f func() error) error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	if err := f(); err != nil {
		return err
	}
	return s.w.Flush()
}

func toWireStats(token uint64, st monitor.Stats) wire.Stats {
	return wire.Stats{
		Token:        token,
		Events:       st.Events,
		Created:      st.Created,
		Flagged:      st.Flagged,
		Collected:    st.Collected,
		GoalVerdicts: st.GoalVerdicts,
		Steps:        st.Steps,
		Live:         st.Live,
		PeakLive:     st.PeakLive,
	}
}
