// link.go: one downstream slot session — the router side of a marked
// (NodeHello) wire session against an rvserve node. A link is the
// cluster's unit of ordered delivery: every frame written to it is
// processed by the node in order, which is what lets a slot's slices see
// events and deaths exactly as the upstream client positioned them.
//
// The link mirrors internal/remote's Client at the frame level: writes
// are serialized and pipelined under wmu, a background reader drains
// verdicts, credit and acks, and sync operations round-trip tokens
// through a pending map. It stays below the ref/instance layer — IDs in,
// IDs out — because the router never materializes objects; translation to
// heap.Refs happens only at the true client (Client in this package, or
// the upstream session's own tables).
package cluster

import (
	"fmt"
	"net"
	"sync"

	"rvgo/internal/monitor"
	"rvgo/internal/param"
	"rvgo/internal/wire"
)

// link is one slot session on a node.
type link struct {
	addr string
	slot int
	conn net.Conn

	// wmu serializes frame writes and flushes; the reader never takes it.
	wmu sync.Mutex
	w   *wire.Writer

	// cmu guards the credit window; credit arrivals signal cond.
	cmu     sync.Mutex
	cond    *sync.Cond
	credits int64

	// pmu guards the pending sync map and the sticky error.
	pmu     sync.Mutex
	pending map[uint64]chan wire.Msg
	token   uint64
	err     error

	onVerdict func(wire.Verdict) // reader goroutine; must not call back
	onDown    func(*link)        // invoked once, on reader death with error

	readerDone chan struct{}
	downOnce   sync.Once
}

// byeToken is the reserved pending-map key for the ByeAck.
const byeToken = 0

// openLink dials a node, marks the session with a NodeHello, and runs the
// ordinary Hello handshake, verifying the node compiled the same spec.
func openLink(dial func(string) (net.Conn, error), addr string, router uint64, slot int,
	spec *monitor.Spec, hello wire.Hello, onVerdict func(wire.Verdict), onDown func(*link)) (*link, error) {
	conn, err := dial(addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: node %s: %w", addr, err)
	}
	l := &link{
		addr:       addr,
		slot:       slot,
		conn:       conn,
		w:          wire.NewWriter(conn),
		pending:    map[uint64]chan wire.Msg{},
		onVerdict:  onVerdict,
		onDown:     onDown,
		readerDone: make(chan struct{}),
	}
	l.cond = sync.NewCond(&l.cmu)

	if err := l.w.WriteNodeHello(wire.NodeHello{Router: router, Slot: uint64(slot)}); err == nil {
		err = l.w.WriteHello(hello)
	}
	if err == nil {
		err = l.w.Flush()
	}
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("cluster: node %s: %w", addr, err)
	}
	r := wire.NewReader(conn)
	var msg wire.Msg
	if err := r.Next(&msg); err != nil {
		conn.Close()
		return nil, fmt.Errorf("cluster: node %s: reading HelloAck: %w", addr, err)
	}
	switch msg.Type {
	case wire.THelloAck:
	case wire.TError:
		conn.Close()
		return nil, fmt.Errorf("cluster: node %s refused slot session: %s", addr, msg.Error.Msg)
	default:
		conn.Close()
		return nil, fmt.Errorf("cluster: node %s: expected HelloAck, got message type %d", addr, msg.Type)
	}
	if err := verifyAck(spec, msg.HelloAck); err != nil {
		conn.Close()
		return nil, fmt.Errorf("cluster: node %s: %w", addr, err)
	}
	l.credits = int64(msg.HelloAck.Window)
	go l.readLoop(r)
	return l, nil
}

// verifyAck checks the node compiled the same spec the router did —
// version skew between nodes would silently misroute symbols.
func verifyAck(spec *monitor.Spec, a wire.HelloAck) error {
	if a.SpecName != spec.Name {
		return fmt.Errorf("spec negotiation: node compiled %q, router %q", a.SpecName, spec.Name)
	}
	if len(a.Events) != len(spec.Events) {
		return fmt.Errorf("spec negotiation: node has %d events, router %d", len(a.Events), len(spec.Events))
	}
	for i, ev := range spec.Events {
		if a.Events[i].Name != ev.Name || param.Set(a.Events[i].Params) != ev.Params {
			return fmt.Errorf("spec negotiation: event %d is %s on the node, %s here", i, a.Events[i].Name, ev.Name)
		}
	}
	return nil
}

// readLoop drains the inbound stream: verdicts to the fanout, credit to
// the window, acks to their waiters.
func (l *link) readLoop(r *wire.Reader) {
	defer close(l.readerDone)
	defer l.drainPending()
	var msg wire.Msg
	for {
		if err := r.Next(&msg); err != nil {
			l.fatal(fmt.Errorf("cluster: node %s: connection lost: %w", l.addr, err))
			return
		}
		switch msg.Type {
		case wire.TVerdict:
			l.onVerdict(msg.Verdict)
		case wire.TCredit:
			l.cmu.Lock()
			l.credits += int64(msg.Credit.N)
			l.cmu.Unlock()
			l.cond.Broadcast()
		case wire.TBarrierAck, wire.TFlushAck:
			l.complete(msg.Sync.Token, msg)
		case wire.TStats, wire.THandoffAck:
			l.complete(msg.Stats.Token, msg)
		case wire.TByeAck:
			l.complete(byeToken, msg)
			return
		case wire.TError:
			l.fatal(fmt.Errorf("cluster: node %s: %s", l.addr, msg.Error.Msg))
			return
		default:
			l.fatal(fmt.Errorf("cluster: node %s: unexpected message type %d", l.addr, msg.Type))
			return
		}
	}
}

func (l *link) complete(token uint64, msg wire.Msg) {
	l.pmu.Lock()
	ch := l.pending[token]
	delete(l.pending, token)
	l.pmu.Unlock()
	if ch != nil {
		ch <- msg
	}
}

// fatal records the sticky error, releases every waiter and credit-blocked
// producer, and reports the link down exactly once.
func (l *link) fatal(err error) {
	l.pmu.Lock()
	if l.err == nil {
		l.err = err
	}
	l.pmu.Unlock()
	l.drainPending()
	l.cmu.Lock()
	l.credits = 1 << 40
	l.cmu.Unlock()
	l.cond.Broadcast()
	if l.onDown != nil {
		l.downOnce.Do(func() { l.onDown(l) })
	}
}

func (l *link) drainPending() {
	l.pmu.Lock()
	chans := make([]chan wire.Msg, 0, len(l.pending))
	for tok, ch := range l.pending {
		chans = append(chans, ch)
		delete(l.pending, tok)
	}
	l.pmu.Unlock()
	for _, ch := range chans {
		close(ch)
	}
}

// dead reports whether the link's session has failed.
func (l *link) dead() bool {
	l.pmu.Lock()
	defer l.pmu.Unlock()
	return l.err != nil
}

// spendCredit takes one event credit, flushing the pipeline and blocking
// while the window is empty. ok is false when the link died (the fatal
// path floods the window so no producer hangs on a dead node); stalled
// reports whether the caller had to wait for the node.
func (l *link) spendCredit() (ok, stalled bool) {
	l.cmu.Lock()
	for l.credits <= 0 {
		stalled = true
		l.cmu.Unlock()
		l.wmu.Lock()
		err := l.w.Flush()
		l.wmu.Unlock()
		if err != nil {
			l.fatal(err)
		}
		l.cmu.Lock()
		if l.credits > 0 {
			break
		}
		l.cond.Wait()
	}
	l.credits--
	l.cmu.Unlock()
	return !l.dead(), stalled
}

// refundCredit returns an acquired-but-unused credit to the window (the
// all-or-nothing broadcast path refunds slots whose copy of the event was
// delivered by a handoff replay instead).
func (l *link) refundCredit() {
	l.cmu.Lock()
	l.credits++
	l.cmu.Unlock()
	l.cond.Broadcast()
}

// event writes one event frame (the caller has already spent credit).
func (l *link) event(sym int, ids []uint64) bool {
	l.wmu.Lock()
	defer l.wmu.Unlock()
	if err := l.w.WriteEvent(sym, ids); err != nil {
		l.fatal(err)
		return false
	}
	return true
}

// free writes and flushes a free frame (credit-exempt; deaths drive the
// node's monitor GC and must be timely even when the pipeline is idle).
func (l *link) free(ids []uint64) bool {
	l.wmu.Lock()
	defer l.wmu.Unlock()
	if err := l.w.WriteFree(ids); err != nil {
		l.fatal(err)
		return false
	}
	if err := l.w.Flush(); err != nil {
		l.fatal(err)
		return false
	}
	return true
}

// handoffBegin opens a handoff bracket on the link (no ack).
func (l *link) handoffBegin(skip uint64) bool {
	l.wmu.Lock()
	defer l.wmu.Unlock()
	if err := l.w.WriteHandoffBegin(wire.HandoffBegin{Skip: skip}); err != nil {
		l.fatal(err)
		return false
	}
	return true
}

// roundTrip issues a token frame and waits for its ack.
func (l *link) roundTrip(t byte) (wire.Msg, bool) {
	l.pmu.Lock()
	if l.err != nil {
		l.pmu.Unlock()
		return wire.Msg{}, false
	}
	l.token++
	tok := l.token
	ch := make(chan wire.Msg, 1)
	l.pending[tok] = ch
	l.pmu.Unlock()

	l.wmu.Lock()
	err := l.w.WriteSync(t, tok)
	if err == nil {
		err = l.w.Flush()
	}
	l.wmu.Unlock()
	if err != nil {
		l.fatal(err)
		return wire.Msg{}, false
	}
	msg, ok := <-ch
	return msg, ok
}

func (l *link) barrier() bool { _, ok := l.roundTrip(wire.TBarrier); return ok }
func (l *link) flush() bool   { _, ok := l.roundTrip(wire.TFlush); return ok }

func (l *link) stats() (wire.Stats, bool) {
	msg, ok := l.roundTrip(wire.TStatsReq)
	return msg.Stats, ok
}

// handoffEnd closes the handoff bracket: the node flushes its backend and
// acks with the settled counters.
func (l *link) handoffEnd() (wire.Stats, bool) {
	msg, ok := l.roundTrip(wire.THandoffEnd)
	return msg.Stats, ok
}

// close performs the orderly Bye → ByeAck shutdown and returns the node's
// final settled counters. The ByeAck is ordered behind every verdict on
// the stream, so after close returns the slot's verdict count is settled.
func (l *link) close() (wire.Stats, bool) {
	l.pmu.Lock()
	if l.err != nil {
		l.pmu.Unlock()
		l.conn.Close()
		<-l.readerDone
		return wire.Stats{}, false
	}
	ch := make(chan wire.Msg, 1)
	l.pending[byeToken] = ch
	l.pmu.Unlock()

	l.wmu.Lock()
	err := l.w.WriteBye()
	if err == nil {
		err = l.w.Flush()
	}
	l.wmu.Unlock()
	var final wire.Stats
	ok := false
	if err == nil {
		if msg, chOK := <-ch; chOK {
			final, ok = msg.Stats, true
		}
	} else {
		l.fatal(err)
	}
	l.conn.Close()
	<-l.readerDone
	return final, ok
}

// shutdown abandons the link without the Bye handshake (the crash path —
// the node is gone, or the slot has been journal-replayed elsewhere).
func (l *link) shutdown() {
	l.conn.Close()
	<-l.readerDone
}
