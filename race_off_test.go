//go:build !race

package rvgo_test

const raceEnabled = false
