// Unsafeiter reproduces the paper's motivating scenario (§1, §3): under
// UNSAFEITER, a long-lived Collection keeps spawning short-lived Iterators.
// JavaMOP can only collect a ⟨c, i⟩ monitor when *both* objects die, so
// monitors for dead iterators pile up for the collection's whole lifetime;
// RV's coenable sets prove them unnecessary the moment the iterator dies.
//
// The example runs the same workload under the three GC policies and
// prints the Figure-10-style counters side by side, plus the ALIVENESS
// formulas that make the difference.
package main

import (
	"fmt"
	"log"

	"rvgo"
	"rvgo/spec"
)

const iterators = 10000

func run(gc rvgo.GCPolicy) rvgo.Stats {
	property, err := spec.Builtin("UnsafeIter")
	if err != nil {
		log.Fatal(err)
	}
	m, err := rvgo.New(property, rvgo.WithGC(gc))
	if err != nil {
		log.Fatal(err)
	}
	create := m.MustEvent("create")
	update := m.MustEvent("update")
	next := m.MustEvent("next")

	h := rvgo.NewHeap()
	coll := h.Alloc("collection") // lives for the whole program
	for k := 0; k < iterators; k++ {
		it := h.Alloc(fmt.Sprintf("iter%d", k))
		create.Emit(coll, it)
		next.Emit(it)
		next.Emit(it)
		h.Free(it)        // the iterator goes out of scope immediately...
		update.Emit(coll) // ...and the collection keeps being updated
	}
	m.Flush()
	st := m.Stats()
	m.Close()
	return st
}

func main() {
	property, err := spec.Builtin("UnsafeIter")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("UNSAFEITER: one immortal Collection,", iterators, "short-lived Iterators")
	fmt.Println("ALIVENESS formulas driving RV's collection decisions:")
	for _, ev := range property.Events() {
		formula, err := property.AlivenessFormula(ev)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  after %-6s → keep iff %s\n", ev, formula)
	}
	fmt.Println()
	fmt.Printf("%-22s %10s %10s %10s %10s %10s\n", "GC policy", "events", "created", "flagged", "collected", "retained")
	for _, p := range []rvgo.GCPolicy{rvgo.GCNone, rvgo.GCAllDead, rvgo.GCCoenable} {
		st := run(p)
		fmt.Printf("%-22s %10d %10d %10d %10d %10d\n",
			label(p), st.Events, st.Created, st.Flagged, st.Collected, st.Live)
	}
	fmt.Println("\nretained = monitors still held by the indexing trees at the end:")
	fmt.Println("JavaMOP-style GC keeps one dead-iterator monitor per iteration alive")
	fmt.Println("as long as the collection lives; RV flags and collects them lazily.")
}

func label(p rvgo.GCPolicy) string {
	switch p {
	case rvgo.GCNone:
		return "none (leak)"
	case rvgo.GCAllDead:
		return "all-dead (JavaMOP)"
	case rvgo.GCCoenable:
		return "coenable (RV)"
	}
	return "?"
}
