// Unsafeiter reproduces the paper's motivating scenario (§1, §3): under
// UNSAFEITER, a long-lived Collection keeps spawning short-lived Iterators.
// JavaMOP can only collect a ⟨c, i⟩ monitor when *both* objects die, so
// monitors for dead iterators pile up for the collection's whole lifetime;
// RV's coenable sets prove them unnecessary the moment the iterator dies.
//
// The example runs the same workload under the three GC policies and
// prints the Figure-10-style counters side by side, plus the ALIVENESS
// formulas that make the difference.
package main

import (
	"fmt"
	"log"

	"rvgo/internal/coenable"
	"rvgo/internal/heap"
	"rvgo/internal/monitor"
	"rvgo/internal/props"
)

const iterators = 10000

func run(gc monitor.GCPolicy) monitor.Stats {
	spec, err := props.Build("UnsafeIter")
	if err != nil {
		log.Fatal(err)
	}
	eng, err := monitor.New(spec, monitor.Options{GC: gc, Creation: monitor.CreateEnable})
	if err != nil {
		log.Fatal(err)
	}
	create, _ := spec.Symbol("create")
	update, _ := spec.Symbol("update")
	next, _ := spec.Symbol("next")

	h := heap.New()
	coll := h.Alloc("collection") // lives for the whole program
	for k := 0; k < iterators; k++ {
		it := h.Alloc(fmt.Sprintf("iter%d", k))
		eng.Emit(create, coll, it)
		eng.Emit(next, it)
		eng.Emit(next, it)
		h.Free(it)             // the iterator goes out of scope immediately...
		eng.Emit(update, coll) // ...and the collection keeps being updated
	}
	eng.Flush()
	return eng.Stats()
}

func main() {
	spec, err := props.Build("UnsafeIter")
	if err != nil {
		log.Fatal(err)
	}
	an, err := spec.Analysis()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("UNSAFEITER: one immortal Collection,", iterators, "short-lived Iterators")
	fmt.Println("ALIVENESS formulas driving RV's collection decisions:")
	for sym, ev := range spec.Events {
		fmt.Printf("  after %-6s → keep iff %s\n", ev.Name,
			coenable.AlivenessFormula(an.CoenParams[sym], spec.Params))
	}
	fmt.Println()
	fmt.Printf("%-22s %10s %10s %10s %10s %10s\n", "GC policy", "events", "created", "flagged", "collected", "retained")
	for _, p := range []monitor.GCPolicy{monitor.GCNone, monitor.GCAllDead, monitor.GCCoenable} {
		st := run(p)
		fmt.Printf("%-22s %10d %10d %10d %10d %10d\n",
			label(p), st.Events, st.Created, st.Flagged, st.Collected, st.Live)
	}
	fmt.Println("\nretained = monitors still held by the indexing trees at the end:")
	fmt.Println("JavaMOP-style GC keeps one dead-iterator monitor per iteration alive")
	fmt.Println("as long as the collection lives; RV flags and collects them lazily.")
}

func label(p monitor.GCPolicy) string {
	switch p {
	case monitor.GCNone:
		return "none (leak)"
	case monitor.GCAllDead:
		return "all-dead (JavaMOP)"
	case monitor.GCCoenable:
		return "coenable (RV)"
	}
	return "?"
}
