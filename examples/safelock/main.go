// Safelock exercises the context-free-grammar plugin with the SAFELOCK
// property of Figure 4: acquire/release pairs must be balanced and
// properly nested with method begin/end, per (Lock, Thread) pair. Finite
// automata cannot express this; the CFG monitor parses the slice
// incrementally (Earley), and the grammar-level fixpoint of §3 still
// yields coenable sets — the formalism-independence the paper claims.
package main

import (
	"fmt"
	"log"

	"rvgo"
	"rvgo/spec"
)

func main() {
	property, err := spec.Builtin("SafeLock")
	if err != nil {
		log.Fatal(err)
	}
	m, err := rvgo.New(property, rvgo.WithVerdictHandler(func(v rvgo.Verdict) {
		fmt.Printf("improper Lock use found! (%s)\n", v.Inst.Format(property.Params()))
	}))
	if err != nil {
		log.Fatal(err)
	}

	h := rvgo.NewHeap()
	lock := h.Alloc("lock")
	t1 := h.Alloc("thread-1")
	t2 := h.Alloc("thread-2")

	acquire := m.MustEvent("acquire")
	release := m.MustEvent("release")
	begin := m.MustEvent("begin")
	end := m.MustEvent("end")

	// Thread 1: disciplined — balanced, properly nested.
	begin.Emit(t1)
	acquire.Emit(lock, t1)
	begin.Emit(t1)
	acquire.Emit(lock, t1)
	release.Emit(lock, t1)
	end.Emit(t1)
	release.Emit(lock, t1)
	end.Emit(t1)

	// Thread 2: releases a lock it released already — the slice leaves the
	// language's prefix closure and the @fail handler fires.
	begin.Emit(t2)
	acquire.Emit(lock, t2)
	release.Emit(lock, t2)
	release.Emit(lock, t2) // violation
	end.Emit(t2)

	m.Flush()
	st := m.Stats()
	fmt.Printf("\nevents=%d monitors=%d verdicts=%d\n", st.Events, st.Created, st.GoalVerdicts)
	m.Close()

	// The match-goal variant admits the paper's CFG coenable analysis;
	// show the grammar-level sets (cf. §3 "CFG Example").
	ms, err := spec.Builtin("SafeLockMatch")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nCFG coenable analysis for goal {match} (grammar fixpoint of §3):")
	for _, ev := range ms.Events() {
		sets, err := ms.CoenableSets(ev)
		if err != nil {
			log.Fatal(err)
		}
		formula, err := ms.AlivenessFormula(ev)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  COENABLE^X(%-8s) = %s   ⇒ keep iff %s\n", ev, sets, formula)
	}
}
