// Safelock exercises the context-free-grammar plugin with the SAFELOCK
// property of Figure 4: acquire/release pairs must be balanced and
// properly nested with method begin/end, per (Lock, Thread) pair. Finite
// automata cannot express this; the CFG monitor parses the slice
// incrementally (Earley), and the grammar-level fixpoint of §3 still
// yields coenable sets — the formalism-independence the paper claims.
package main

import (
	"fmt"
	"log"

	"rvgo/internal/coenable"
	"rvgo/internal/heap"
	"rvgo/internal/monitor"
	"rvgo/internal/props"
)

func main() {
	spec, err := props.Build("SafeLock")
	if err != nil {
		log.Fatal(err)
	}
	eng, err := monitor.New(spec, monitor.Options{
		GC:       monitor.GCCoenable,
		Creation: monitor.CreateEnable,
		OnVerdict: func(v monitor.Verdict) {
			fmt.Printf("improper Lock use found! (%s)\n", v.Inst.Format(spec.Params))
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	h := heap.New()
	lock := h.Alloc("lock")
	t1 := h.Alloc("thread-1")
	t2 := h.Alloc("thread-2")

	acquire, _ := spec.Symbol("acquire")
	release, _ := spec.Symbol("release")
	begin, _ := spec.Symbol("begin")
	end, _ := spec.Symbol("end")

	// Thread 1: disciplined — balanced, properly nested.
	eng.Emit(begin, t1)
	eng.Emit(acquire, lock, t1)
	eng.Emit(begin, t1)
	eng.Emit(acquire, lock, t1)
	eng.Emit(release, lock, t1)
	eng.Emit(end, t1)
	eng.Emit(release, lock, t1)
	eng.Emit(end, t1)

	// Thread 2: releases a lock it released already — the slice leaves the
	// language's prefix closure and the @fail handler fires.
	eng.Emit(begin, t2)
	eng.Emit(acquire, lock, t2)
	eng.Emit(release, lock, t2)
	eng.Emit(release, lock, t2) // violation
	eng.Emit(end, t2)

	eng.Flush()
	st := eng.Stats()
	fmt.Printf("\nevents=%d monitors=%d verdicts=%d\n", st.Events, st.Created, st.GoalVerdicts)

	// The match-goal variant admits the paper's CFG coenable analysis;
	// show the grammar-level sets (cf. §3 "CFG Example").
	ms, err := props.Build("SafeLockMatch")
	if err != nil {
		log.Fatal(err)
	}
	an, err := ms.Analysis()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nCFG coenable analysis for goal {match} (grammar fixpoint of §3):")
	for sym, ev := range ms.Events {
		fmt.Printf("  COENABLE^X(%-8s) = %s   ⇒ keep iff %s\n", ev.Name,
			coenable.FormatParamSets(an.CoenParams[sym], ms.Params),
			coenable.AlivenessFormula(an.CoenParams[sym], ms.Params))
	}
}
