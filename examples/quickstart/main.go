// Quickstart: monitor the HASNEXT typestate (Figures 1–2) over a toy
// program. Demonstrates the core API: build a property, create an engine
// with a verdict handler, emit parametric events, read the statistics.
package main

import (
	"fmt"
	"log"

	"rvgo/internal/heap"
	"rvgo/internal/monitor"
	"rvgo/internal/props"
)

func main() {
	// 1. Build the property (an FSM over events hasnexttrue, hasnextfalse,
	//    next, parametric in the iterator i) and inspect its analysis.
	spec, err := props.Build("HasNext")
	if err != nil {
		log.Fatal(err)
	}

	// 2. Create the RV engine: coenable-set garbage collection and
	//    enable-set creation avoidance, with a handler on the goal
	//    category (the FSM state "error").
	eng, err := monitor.New(spec, monitor.Options{
		GC:       monitor.GCCoenable,
		Creation: monitor.CreateEnable,
		OnVerdict: func(v monitor.Verdict) {
			fmt.Printf("improper Iterator use found! (%s)\n", v.Inst.Format(spec.Params))
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Run a little "program". Objects live on a simulated heap so the
	//    engine can observe their deaths deterministically.
	h := heap.New()
	sym := func(name string) int {
		s, ok := spec.Symbol(name)
		if !ok {
			log.Fatalf("no event %s", name)
		}
		return s
	}
	hasNextTrue, hasNextFalse, next := sym("hasnexttrue"), sym("hasnextfalse"), sym("next")

	// A disciplined iterator: hasNext before every next.
	good := h.Alloc("good-iter")
	for k := 0; k < 3; k++ {
		eng.Emit(hasNextTrue, good)
		eng.Emit(next, good)
	}
	eng.Emit(hasNextFalse, good)
	h.Free(good)

	// A sloppy iterator: next() after hasNext() returned false.
	bad := h.Alloc("bad-iter")
	eng.Emit(hasNextTrue, bad)
	eng.Emit(next, bad)
	eng.Emit(hasNextFalse, bad)
	eng.Emit(next, bad) // violation: the handler fires here
	h.Free(bad)

	// 4. Statistics (the counters of the paper's Figure 10).
	eng.Flush()
	st := eng.Stats()
	fmt.Printf("events=%d monitors created=%d flagged=%d collected=%d verdicts=%d\n",
		st.Events, st.Created, st.Flagged, st.Collected, st.GoalVerdicts)
}
