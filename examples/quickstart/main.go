// Quickstart: monitor the HASNEXT typestate (Figures 1–2) over a toy
// program through the rvgo façade. Demonstrates the whole public API in
// one sitting: build a property (rvgo/spec), create a monitor with a
// verdict handler (rvgo.New), resolve typed emitters, emit parametric
// events, read the statistics.
package main

import (
	"fmt"
	"log"

	"rvgo"
	"rvgo/spec"
)

func main() {
	// 1. Build the property: an FSM over events hasnexttrue, hasnextfalse
	//    and next, parametric in the iterator i. spec.Builtin("HasNext")
	//    returns the same property from the built-in library; it is
	//    spelled out here to show the fluent builder. Validation and the
	//    paper's static analyses run now — errors surface at build time,
	//    not at first event.
	property, err := spec.New("HasNext").
		Params("i").
		Event("hasnexttrue", "i").
		Event("hasnextfalse", "i").
		Event("next", "i").
		FSM(
			spec.State("unknown", "hasnexttrue", "more", "hasnextfalse", "none", "next", "error"),
			spec.State("more", "hasnexttrue", "more", "hasnextfalse", "none", "next", "unknown"),
			spec.State("none", "hasnexttrue", "more", "hasnextfalse", "none", "next", "error"),
			spec.State("error"),
		).
		Goal("error").
		Build()
	if err != nil {
		log.Fatal(err)
	}

	// 2. Create the monitor: coenable-set garbage collection and
	//    enable-set creation avoidance are the defaults, so only the
	//    verdict handler needs saying. rvgo.WithShards(4) here would run
	//    the same property on the sharded concurrent runtime, and
	//    rvgo.WithRemote("host:7472") on a monitoring server.
	m, err := rvgo.New(property, rvgo.WithVerdictHandler(func(v rvgo.Verdict) {
		fmt.Printf("improper Iterator use found! (%s)\n", v.Inst.Format(property.Params()))
	}))
	if err != nil {
		log.Fatal(err)
	}

	// 3. Resolve the events once; each Emitter's Emit is then the
	//    allocation-free hot path — no name lookups while the program
	//    runs.
	hasNextTrue := m.MustEvent("hasnexttrue")
	hasNextFalse := m.MustEvent("hasnextfalse")
	next := m.MustEvent("next")

	// 4. Run a little "program". Objects live on a simulated heap so the
	//    monitor can observe their deaths deterministically; package rv
	//    monitors real Go objects instead.
	h := rvgo.NewHeap()

	// A disciplined iterator: hasNext before every next.
	good := h.Alloc("good-iter")
	for k := 0; k < 3; k++ {
		hasNextTrue.Emit(good)
		next.Emit(good)
	}
	hasNextFalse.Emit(good)
	h.Free(good)

	// A sloppy iterator: next() after hasNext() returned false.
	bad := h.Alloc("bad-iter")
	hasNextTrue.Emit(bad)
	next.Emit(bad)
	hasNextFalse.Emit(bad)
	next.Emit(bad) // violation: the handler fires here
	h.Free(bad)

	// 5. Statistics (the counters of the paper's Figure 10).
	m.Flush()
	st := m.Stats()
	fmt.Printf("events=%d monitors created=%d flagged=%d collected=%d verdicts=%d\n",
		st.Events, st.Created, st.Flagged, st.Collected, st.GoalVerdicts)
	m.Close()
}
