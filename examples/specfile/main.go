// Specfile shows the .rv specification language end to end: the HASNEXT
// property of Figure 2 written with both its formalisms (FSM and past-time
// LTL), parsed, compiled to two monitors, and run over the same trace —
// both handlers fire at the same violation.
package main

import (
	"fmt"
	"log"

	"rvgo/internal/heap"
	"rvgo/internal/monitor"
	"rvgo/internal/spec"
)

const hasNextRV = `
// HASNEXT, as in Figure 2 of the paper, minus the AspectJ pointcuts:
// events are declared over the property parameters and emitted through
// the engine API.
HasNext(Iterator i) {
    event hasnexttrue(i)
    event hasnextfalse(i)
    event next(i)

    fsm:
    unknown [
        hasnexttrue -> more
        hasnextfalse -> none
        next -> error
    ]
    more [
        hasnexttrue -> more
        hasnextfalse -> none
        next -> unknown
    ]
    none [
        hasnextfalse -> none
        hasnexttrue -> more
        next -> error
    ]
    error [ ]
    @error { print "improper Iterator use found! (fsm)" }

    ltl: [] (next -> (*) hasnexttrue)
    @violation { print "improper Iterator use found! (ltl)" }
}
`

func main() {
	prop, err := spec.Parse(hasNextRV)
	if err != nil {
		log.Fatal(err)
	}
	compiled, err := prop.Compile()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parsed %s with %d logic blocks (%s parameters: %v)\n\n",
		prop.Name, len(prop.Logics), prop.Params[0].Type, prop.Params[0].Name)

	h := heap.New()
	var engines []*monitor.Engine
	for _, c := range compiled {
		c := c
		eng, err := monitor.New(c.Spec, monitor.Options{
			GC:       monitor.GCCoenable,
			Creation: monitor.CreateEnable,
			OnVerdict: func(v monitor.Verdict) {
				if body, ok := c.Handlers[v.Cat]; ok {
					spec.RunHandler(body, func(line string) {
						fmt.Printf("%s %s: %s\n", v.Inst.Format(c.Spec.Params), v.Cat, line)
					})
				}
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		engines = append(engines, eng)
	}
	emit := func(event string, vals ...heap.Ref) {
		for _, eng := range engines {
			if err := eng.EmitNamed(event, vals...); err != nil {
				log.Fatal(err)
			}
		}
	}

	it := h.Alloc("i1")
	emit("hasnexttrue", it)
	emit("next", it)
	emit("next", it) // both formalisms flag this second, unchecked next()
	h.Free(it)
}
