// Specfile shows the .rv specification language end to end: the HASNEXT
// property of Figure 2 written with both its formalisms (FSM and past-time
// LTL), parsed into two monitors, and run over the same trace — both
// handlers fire at the same violation.
package main

import (
	"fmt"
	"log"

	"rvgo"
	"rvgo/spec"
)

const hasNextRV = `
// HASNEXT, as in Figure 2 of the paper, minus the AspectJ pointcuts:
// events are declared over the property parameters and emitted through
// the façade API.
HasNext(Iterator i) {
    event hasnexttrue(i)
    event hasnextfalse(i)
    event next(i)

    fsm:
    unknown [
        hasnexttrue -> more
        hasnextfalse -> none
        next -> error
    ]
    more [
        hasnexttrue -> more
        hasnextfalse -> none
        next -> unknown
    ]
    none [
        hasnextfalse -> none
        hasnexttrue -> more
        next -> error
    ]
    error [ ]
    @error { print "improper Iterator use found! (fsm)" }

    ltl: [] (next -> (*) hasnexttrue)
    @violation { print "improper Iterator use found! (ltl)" }
}
`

func main() {
	specs, err := spec.Parse(hasNextRV)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parsed %d logic blocks:", len(specs))
	for _, s := range specs {
		fmt.Printf(" %s(%s)", s.Name(), s.Kind())
	}
	fmt.Print("\n\n")

	h := rvgo.NewHeap()
	var monitors []*rvgo.Monitor
	for _, s := range specs {
		s := s
		handlers := s.Handlers()
		m, err := rvgo.New(s, rvgo.WithVerdictHandler(func(v rvgo.Verdict) {
			if body, ok := handlers[string(v.Cat)]; ok {
				spec.RunHandler(body, func(line string) {
					fmt.Printf("%s %s: %s\n", v.Inst.Format(s.Params()), v.Cat, line)
				})
			}
		}))
		if err != nil {
			log.Fatal(err)
		}
		monitors = append(monitors, m)
	}
	emit := func(event string, vals ...rvgo.Ref) {
		for _, m := range monitors {
			if err := m.EmitNamed(event, vals...); err != nil {
				log.Fatal(err)
			}
		}
	}

	it := h.Alloc("i1")
	emit("hasnexttrue", it)
	emit("next", it)
	emit("next", it) // both formalisms flag this second, unchecked next()
	h.Free(it)
	for _, m := range monitors {
		m.Close()
	}
}
