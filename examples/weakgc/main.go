// Weakgc demonstrates the live-object ingestion mode (package rv) against
// real Go map iterators: the UNSAFEITER property is monitored over an
// actual map[string]int and real iterator objects, with no simulated heap
// anywhere — identity comes from the weak-keyed object registry, and the
// death signal that drives coenable-set monitor GC is the real Go garbage
// collector reclaiming the iterators.
//
// Two things are shown:
//
//  1. The property fires on live objects: a map mutated mid-iteration and
//     then iterated again is caught, exactly as the paper's AspectJ-woven
//     monitor catches java.util collections.
//  2. The real GC reclaims monitors: thousands of short-lived iterators
//     complete and become garbage while the map lives on; under the
//     all-dead condition their monitors would be stuck until the map
//     dies, under coenable sets they are collected with the iterators.
//
// Run with: go run ./examples/weakgc
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"rvgo"
	"rvgo/rv"
	"rvgo/spec"
)

// MapIter is a java.util.Iterator-style cursor over a map snapshot — the
// kind of short-lived helper object the paper's evaluation is full of.
type MapIter struct {
	m    map[string]int
	keys []string
	pos  int
}

// Iter snapshots the map's keys, emitting the create event over the live
// map and the live iterator.
func Iter(s *rv.Session, m map[string]int) *MapIter {
	it := &MapIter{m: m}
	for k := range m {
		it.keys = append(it.keys, k)
	}
	rv.Attach(s, "create", m, it)
	return it
}

// Next advances the cursor, emitting the next event.
func (it *MapIter) Next(s *rv.Session) (string, bool) {
	rv.Attach(s, "next", it)
	if it.pos >= len(it.keys) {
		return "", false
	}
	k := it.keys[it.pos]
	it.pos++
	return k, true
}

// Put mutates the map, emitting the update event.
func Put(s *rv.Session, m map[string]int, k string, v int) {
	m[k] = v
	rv.Attach(s, "update", m)
}

// drainIterators spawns n iterators that each walk the map to completion
// and then become garbage. noinline keeps them out of the caller's frame
// so the GC can really take them.
//
//go:noinline
func drainIterators(s *rv.Session, m map[string]int, n int) {
	for i := 0; i < n; i++ {
		it := Iter(s, m)
		for {
			if _, ok := it.Next(s); !ok {
				break
			}
		}
	}
}

func run(gc rvgo.GCPolicy, report bool) rvgo.Stats {
	property, err := spec.Builtin("UnsafeIter")
	if err != nil {
		log.Fatal(err)
	}
	m, err := rvgo.New(property,
		rvgo.WithGC(gc),
		rvgo.WithVerdictHandler(func(v rvgo.Verdict) {
			if report {
				fmt.Printf("  caught: %s over %s — map mutated during iteration\n",
					v.Cat, v.Inst.Format(property.Params()))
			}
		}))
	if err != nil {
		log.Fatal(err)
	}
	s := rv.New(m, rv.Options{Label: func(v any) string {
		if _, ok := v.(map[string]int); ok {
			return "scores"
		}
		return "iter"
	}})

	scores := map[string]int{"ada": 3, "bob": 1, "eve": 2}

	// The unsafe pattern: mutate while an iterator is live, then advance.
	it := Iter(s, scores)
	it.Next(s)
	Put(s, scores, "mal", 0)
	it.Next(s) // the monitor matches here

	// The leak pattern the paper's GC exists for: a long-lived map, an
	// endless parade of short-lived iterators. Some cleanups fire (and
	// auto-deliver) already during the parade, so the settle target is
	// absolute: everything dropped since before the parade began.
	const parade = 5000
	before := s.Registry().Cleaned()
	drainIterators(s, scores, parade)
	if !s.Registry().Settle(before+parade, 30*time.Second) {
		log.Fatalf("GC did not reclaim the iterators: %+v", s.Registry().Stats())
	}
	s.Poll()

	s.Flush()
	st := s.Stats()
	s.Close()
	// The point of the exercise is that the map OUTLIVES its iterators:
	// keep it alive past the final counter snapshot.
	runtime.KeepAlive(scores)
	return st
}

func main() {
	fmt.Println("UNSAFEITER over a live map[string]int (real objects, real GC):")
	st := run(rvgo.GCCoenable, true)
	fmt.Printf("  coenable: %d monitors created, %d collected, %d still live\n",
		st.Created, st.Collected, st.Live)

	fmt.Println("\nsame workload under the other policies:")
	for _, gc := range []rvgo.GCPolicy{rvgo.GCNone, rvgo.GCAllDead} {
		st := run(gc, false)
		fmt.Printf("  %-8s: %d created, %d collected, %d still live (dead iterators pinned by the live map)\n",
			gc, st.Created, st.Collected, st.Live)
	}
	fmt.Println("\nthe map outlives its iterators; only coenable sets notice the iterators' deaths suffice.")
}
