// Remote quickstart: the same HASNEXT monitoring as examples/quickstart,
// but over the network — a monitoring server on localhost, a session
// opened with rvgo.WithRemote, and explicit protocol-level object deaths
// standing in for garbage collection. The trace, verdicts and settled
// statistics are identical to the in-process run; only the death signal
// changes, from weak references to Free messages.
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"rvgo"
	"rvgo/spec"
)

func main() {
	// 1. Start a monitoring server on an ephemeral localhost port. In a
	//    real deployment this is `rvserve` on another machine, monitoring
	//    many programs at once — each connection is an isolated session.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := rvgo.NewServer(rvgo.ServerOptions{})
	go srv.Serve(l)
	defer srv.Shutdown(time.Second)

	// 2. Open a session. The property must come from the built-in
	//    library or .rv source, because both ends compile it and verify
	//    the event lists against each other in the handshake; the GC
	//    policy and backend shape (sequential here; WithShards(4) for a
	//    sharded session) are per session. The returned Monitor is the
	//    same type as an in-process one, so everything that monitors
	//    locally monitors remotely unchanged.
	property, err := spec.Builtin("HasNext")
	if err != nil {
		log.Fatal(err)
	}
	m, err := rvgo.New(property,
		rvgo.WithRemote(l.Addr().String()),
		rvgo.WithVerdictHandler(func(v rvgo.Verdict) {
			fmt.Printf("improper Iterator use found! (%s)\n", v.Inst.Format(property.Params()))
		}))
	if err != nil {
		log.Fatal(err)
	}

	// 3. Run the little "program". Events pipeline to the server; the
	//    verdict arrives on a background reader.
	h := rvgo.NewHeap()
	iter1 := h.Alloc("iter1")
	must(m.EmitNamed("hasnexttrue", iter1))
	must(m.EmitNamed("next", iter1))
	must(m.EmitNamed("next", iter1)) // second next without hasNext: verdict

	// 4. The network has no weak references, so garbage is an explicit
	//    trace event: Free tells the server iter1 died. The server
	//    barriers the session's runtime first, so every event above
	//    observed iter1 alive — then the coenable-set GC reclaims the
	//    monitor, exactly as if a weak reference had been cleared.
	h.Free(iter1)
	m.Free(iter1)

	// 5. Settle and read the Figure 10 counters over the wire.
	m.Flush()
	st := m.Stats()
	fmt.Printf("events=%d created=%d flagged=%d collected=%d verdicts=%d\n",
		st.Events, st.Created, st.Flagged, st.Collected, st.GoalVerdicts)
	m.Close()
	if err := m.Err(); err != nil {
		log.Fatal(err)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
