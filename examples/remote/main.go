// Remote quickstart: the same HASNEXT monitoring as examples/quickstart,
// but over the network — a monitoring server on localhost, a client
// session implementing monitor.Runtime over the wire protocol, and
// explicit protocol-level object deaths standing in for garbage
// collection. The trace, verdicts and settled statistics are identical to
// the in-process run; only the death signal changes, from weak references
// to Free messages.
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"rvgo/client"
	"rvgo/internal/heap"
	"rvgo/internal/monitor"
	"rvgo/internal/server"
)

func main() {
	// 1. Start a monitoring server on an ephemeral localhost port. In a
	//    real deployment this is `rvserve` on another machine, monitoring
	//    many programs at once — each connection is an isolated session.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := server.New(server.Options{})
	go srv.Serve(l)
	defer srv.Shutdown(time.Second)

	// 2. Dial a session. The property is compiled on both sides from the
	//    same reference and the event lists are verified against each
	//    other in the handshake; the GC policy and backend shape
	//    (sequential here; Shards: 4 for a sharded session) are per
	//    session. The Client implements monitor.Runtime, so everything
	//    that monitors through an Engine monitors through it unchanged.
	cl, err := client.Dial(l.Addr().String(), client.Options{
		Prop:     "HasNext",
		GC:       monitor.GCCoenable,
		Creation: monitor.CreateEnable,
		Shards:   1,
		OnVerdict: func(v monitor.Verdict) {
			fmt.Printf("improper Iterator use found! (%s)\n", v.Inst.Format(v.Spec.Params))
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Run the little "program". Events pipeline to the server; the
	//    verdict arrives on a background reader.
	h := heap.New()
	iter1 := h.Alloc("iter1")
	must(cl.EmitNamed("hasnexttrue", iter1))
	must(cl.EmitNamed("next", iter1))
	must(cl.EmitNamed("next", iter1)) // second next without hasNext: verdict

	// 4. The network has no weak references, so garbage is an explicit
	//    trace event: Free tells the server iter1 died. The server
	//    barriers the session's runtime first, so every event above
	//    observed iter1 alive — then the coenable-set GC reclaims the
	//    monitor, exactly as if a weak reference had been cleared.
	h.Free(iter1)
	cl.Free(iter1)

	// 5. Settle and read the Figure 10 counters over the wire.
	cl.Flush()
	st := cl.Stats()
	fmt.Printf("events=%d created=%d flagged=%d collected=%d verdicts=%d\n",
		st.Events, st.Created, st.Flagged, st.Collected, st.GoalVerdicts)
	cl.Close()
	if err := cl.Err(); err != nil {
		log.Fatal(err)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
