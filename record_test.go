package rvgo_test

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"rvgo"
	"rvgo/internal/monitor"
	"rvgo/internal/trace"
	"rvgo/spec"
)

// driveUnsafeIter runs a small UNSAFEITER workload with explicit deaths
// through m: half the iterators observe an update between create and next
// (a violation), half do not.
func driveUnsafeIter(t *testing.T, m *rvgo.Monitor, h *rvgo.Heap) {
	t.Helper()
	create, update, next := m.MustEvent("create"), m.MustEvent("update"), m.MustEvent("next")
	c := h.Alloc("c")
	for r := 0; r < 20; r++ {
		it := h.Alloc(fmt.Sprintf("i%d", r))
		create.Emit(c, it)
		if r%2 == 1 {
			update.Emit(c)
		}
		next.Emit(it)
		m.Free(it)
		h.Free(it)
	}
	m.Free(c)
	h.Free(c)
}

func verdictKey(v rvgo.Verdict) string {
	k := v.Inst.Key()
	return fmt.Sprintf("%d/%s/%v/%v", v.Sym, v.Cat, k.Mask, k.IDs)
}

// TestRecordReplayMatchesOnline is the façade half of the retro oracle:
// a run recorded with WithRecord and replayed from disk through a fresh
// sequential engine yields bit-identical verdicts and settled counters,
// whether the online backend was sequential or sharded.
func TestRecordReplayMatchesOnline(t *testing.T) {
	sp, err := spec.Builtin("UnsafeIter")
	if err != nil {
		t.Fatal(err)
	}
	for _, bk := range []struct {
		name string
		opts []rvgo.Option
	}{
		{"seq", nil},
		{"shard4", []rvgo.Option{rvgo.WithShards(4)}},
	} {
		t.Run(bk.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "run.rvt")
			var online []string
			opts := append([]rvgo.Option{
				rvgo.WithRecord(path),
				rvgo.WithVerdictHandler(func(v rvgo.Verdict) { online = append(online, verdictKey(v)) }),
			}, bk.opts...)
			m, err := rvgo.New(sp, opts...)
			if err != nil {
				t.Fatal(err)
			}
			driveUnsafeIter(t, m, rvgo.NewHeap())
			m.Flush()
			onlineStats := m.Stats()
			m.Close()
			if err := m.Err(); err != nil {
				t.Fatalf("recording error: %v", err)
			}

			r, err := trace.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			if r.Truncated() {
				t.Fatal("clean close left a truncated trace")
			}
			var retro []string
			eng, err := monitor.New(sp.Compiled(), monitor.Options{
				GC:       monitor.GCCoenable,
				Creation: monitor.CreateEnable,
				OnVerdict: func(v monitor.Verdict) {
					retro = append(retro, verdictKey(v))
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := r.Replay(eng, trace.ReplayOptions{}); err != nil {
				t.Fatal(err)
			}
			eng.Flush()
			retroStats := eng.Stats()
			eng.Close()

			sort.Strings(online)
			sort.Strings(retro)
			if fmt.Sprint(online) != fmt.Sprint(retro) {
				t.Errorf("verdicts diverge:\n  online %v\n  retro  %v", online, retro)
			}
			if bk.name == "seq" && onlineStats != retroStats {
				t.Errorf("settled stats diverge:\n  online %+v\n  retro  %+v", onlineStats, retroStats)
			}
			// Across backends the slice-level counters must still agree.
			if onlineStats.Events != retroStats.Events ||
				onlineStats.Created != retroStats.Created ||
				onlineStats.GoalVerdicts != retroStats.GoalVerdicts {
				t.Errorf("counters diverge: online %+v retro %+v", onlineStats, retroStats)
			}
		})
	}
}

// TestRecordFlushSealsSegment pins the durability contract: after Flush
// the on-disk trace already contains every record so far.
func TestRecordFlushSealsSegment(t *testing.T) {
	sp, err := spec.Builtin("HasNext")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "flush.rvt")
	m, err := rvgo.New(sp, rvgo.WithRecord(path))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	h := rvgo.NewHeap()
	it := h.Alloc("it")
	m.MustEvent("hasnexttrue").Emit(it)
	m.MustEvent("next").Emit(it)
	m.Flush()
	r, err := trace.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Records(); got != 2 {
		t.Errorf("records visible after Flush = %d, want 2", got)
	}
}

// TestFlightRecorderWindow covers WithFlightRecorder and LastWindow: the
// window behind a failure verdict holds the recent events and deaths that
// led to it, oldest first, and unknown refs return nil.
func TestFlightRecorderWindow(t *testing.T) {
	sp, err := spec.Builtin("HasNext")
	if err != nil {
		t.Fatal(err)
	}
	m, err := rvgo.New(sp, rvgo.WithFlightRecorder(8))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	h := rvgo.NewHeap()
	hnT, next := m.MustEvent("hasnexttrue"), m.MustEvent("next")
	// Noise that must scroll out of the 8-slot ring.
	for i := 0; i < 10; i++ {
		noise := h.Alloc(fmt.Sprintf("n%d", i))
		hnT.Emit(noise)
		m.Free(noise)
		h.Free(noise)
	}
	bad := h.Alloc("bad")
	hnT.Emit(bad)
	next.Emit(bad)
	next.Emit(bad) // next without hasNext: error verdict on bad
	win := m.LastWindow(bad)
	if win == nil {
		t.Fatal("LastWindow(bad) = nil after a verdict on bad")
	}
	var evs []string
	for _, e := range win {
		if e.Free {
			evs = append(evs, "free")
		} else {
			evs = append(evs, e.Event)
		}
	}
	s := strings.Join(evs, " ")
	if !strings.HasSuffix(s, "hasnexttrue next next") {
		t.Errorf("window = %q, want suffix %q", s, "hasnexttrue next next")
	}
	last := win[len(win)-1]
	if len(last.IDs) != 1 || last.IDs[0] != bad.ID() {
		t.Errorf("last window entry binds %v, want [%d]", last.IDs, bad.ID())
	}
	for i := 1; i < len(win); i++ {
		if win[i].Seq != win[i-1].Seq+1 {
			t.Errorf("window seqs not contiguous: %d then %d", win[i-1].Seq, win[i].Seq)
		}
	}
	if m.LastWindow(h.Alloc("never")) != nil {
		t.Error("LastWindow of an unmentioned ref is not nil")
	}
	if m.LastWindow(nil) != nil {
		t.Error("LastWindow(nil) is not nil")
	}
}

// TestRecordOptionValidation pins the construction-time errors of the new
// options.
func TestRecordOptionValidation(t *testing.T) {
	sp, err := spec.Builtin("HasNext")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rvgo.New(sp, rvgo.WithRecord("")); err == nil || !strings.Contains(err.Error(), "WithRecord") {
		t.Errorf("WithRecord(\"\") error = %v", err)
	}
	if _, err := rvgo.New(sp, rvgo.WithFlightRecorder(0)); err == nil || !strings.Contains(err.Error(), "WithFlightRecorder") {
		t.Errorf("WithFlightRecorder(0) error = %v", err)
	}
	if _, err := rvgo.New(sp, rvgo.WithRecord(filepath.Join(t.TempDir(), "no", "such", "dir", "t.rvt"))); err == nil {
		t.Error("WithRecord into a missing directory did not fail at New")
	}
}
