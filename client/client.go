// Package client dials remote monitoring sessions against an rvserve
// monitoring server.
//
// It is a thin compatibility veneer over the rvgo façade: Dial is exactly
//
//	rvgo.New(spec, rvgo.WithRemote(addr), ...)
//
// and the returned *rvgo.Monitor is the session — events pipeline to the
// server, verdicts arrive on a background reader, object deaths are
// reported with Free (the protocol-level replacement for the weak
// references in-process backends consume), and Err surfaces the sticky
// session error. New code should use the façade directly; this package
// exists so "the remote client" keeps a name and a doorstep.
package client

import (
	"errors"
	"net"

	"rvgo"
	"rvgo/spec"
)

// Options configures a session.
type Options struct {
	// Prop names a property from the server's built-in library. Exactly
	// one of Prop and SpecSource must be set.
	Prop string
	// SpecSource is .rv specification source compiled by both sides; it
	// must define exactly one property.
	SpecSource string
	// GC is the monitor GC policy for the session's backend.
	GC rvgo.GCPolicy
	// Creation is the monitor creation strategy.
	Creation rvgo.CreationStrategy
	// Shards selects the server-side backend: 1 = sequential engine,
	// >1 = sharded runtime, 0 = server default.
	Shards int
	// Window caps the event-credit window (0 = accept the server's).
	Window int
	// OnVerdict receives goal verdicts, serialized, in per-slice order.
	// It runs on the reader goroutine and must not call back into the
	// session.
	OnVerdict func(rvgo.Verdict)
}

// Dial opens a monitoring session against the server at addr.
func Dial(addr string, opts Options) (*rvgo.Monitor, error) {
	s, extra, err := resolve(opts)
	if err != nil {
		return nil, err
	}
	return rvgo.New(s, append(extra, rvgo.WithRemote(addr))...)
}

// DialCluster opens one logical monitoring session spread across a
// cluster of servers: exactly
//
//	rvgo.New(spec, rvgo.WithCluster(addrs...), ...)
//
// Slices are placed by consistent-hashing the property's pivot parameter,
// so the session requires enable-set creation (the zero Creation value)
// and ignores Options.Shards semantics other than rejecting values above
// one — the per-node sessions are always sequential.
func DialCluster(addrs []string, opts Options) (*rvgo.Monitor, error) {
	if opts.Shards > 1 {
		return nil, errors.New("client: DialCluster shards by pivot across nodes; Shards must be 0 or 1")
	}
	opts.Shards = 0
	s, extra, err := resolve(opts)
	if err != nil {
		return nil, err
	}
	return rvgo.New(s, append(extra, rvgo.WithCluster(addrs...))...)
}

// NewSession runs the session handshake over an established connection
// (Dial with a dialed TCP conn; tests may pass an in-process pipe). The
// session owns the connection: it is closed on every error path.
func NewSession(conn net.Conn, opts Options) (*rvgo.Monitor, error) {
	s, extra, err := resolve(opts)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return rvgo.New(s, append(extra, rvgo.WithRemoteConn(conn))...)
}

func resolve(opts Options) (*spec.Spec, []rvgo.Option, error) {
	var s *spec.Spec
	var err error
	switch {
	case opts.Prop != "" && opts.SpecSource != "":
		return nil, nil, errors.New("client: set exactly one of Prop and SpecSource")
	case opts.Prop != "":
		s, err = spec.Builtin(opts.Prop)
	case opts.SpecSource != "":
		s, err = spec.ParseOne(opts.SpecSource)
	default:
		return nil, nil, errors.New("client: set one of Prop and SpecSource")
	}
	if err != nil {
		return nil, nil, err
	}
	ropts := []rvgo.Option{
		rvgo.WithGC(opts.GC),
		rvgo.WithCreation(opts.Creation),
		rvgo.WithVerdictHandler(opts.OnVerdict),
	}
	if opts.Shards > 0 {
		ropts = append(ropts, rvgo.WithShards(opts.Shards))
	}
	if opts.Window > 0 {
		ropts = append(ropts, rvgo.WithWindow(opts.Window))
	}
	return s, ropts, nil
}
