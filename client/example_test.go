package client_test

import (
	"fmt"
	"net"
	"time"

	"rvgo"
	"rvgo/client"
)

// Example monitors the UNSAFEITER property over a TCP session: the
// monitored program names its objects with rvgo.Refs, streams events to
// an rvserve-style server, and reports object deaths with Free — the
// protocol-level replacement for the weak-reference death signal the
// in-process backends consume. Dial is sugar for
// rvgo.New(spec, rvgo.WithRemote(addr), ...); the session it returns is
// an ordinary *rvgo.Monitor.
func Example() {
	// An in-process server stands in for `rvserve -listen ...`.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	srv := rvgo.NewServer(rvgo.ServerOptions{})
	go srv.Serve(l)
	defer srv.Shutdown(5 * time.Second)

	verdicts := make(chan string, 1)
	c, err := client.Dial(l.Addr().String(), client.Options{
		Prop: "UnsafeIter",
		GC:   rvgo.GCCoenable,
		OnVerdict: func(v rvgo.Verdict) {
			verdicts <- fmt.Sprintf("verdict: %s at %s", v.Cat, v.Inst.Format([]string{"c", "i"}))
		},
	})
	if err != nil {
		panic(err)
	}

	h := rvgo.NewHeap()
	coll, iter := h.Alloc("coll"), h.Alloc("iter")
	c.MustEvent("create").Emit(coll, iter)
	c.MustEvent("update").Emit(coll) // the collection changes mid-iteration
	c.MustEvent("next").Emit(iter)   // the stale iterator is used — a match
	c.Barrier()                      // every verdict those events produced is in
	fmt.Println(<-verdicts)

	// The iterator goes out of scope in the monitored program: its death
	// travels as a protocol free, and the server's coenable-set GC
	// reclaims the monitors that depended on it.
	c.Free(iter)
	h.Free(iter)

	c.Flush()
	st := c.Stats()
	fmt.Printf("monitors created: %d, collected: %d\n", st.Created, st.Collected)
	c.Close()

	// Output:
	// verdict: match at <c=coll, i=iter>
	// monitors created: 2, collected: 1
}
