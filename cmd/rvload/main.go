// Command rvload is the load generator for the monitoring server: it
// records a DaCapo workload trace once, then drives N concurrent client
// sessions replaying it against an rvserve instance, and reports aggregate
// throughput and sync-round-trip latency percentiles.
//
// Usage:
//
//	rvload [-addr localhost:7472] [-conns 8] [-bench avrora]
//	       [-prop UnsafeIter] [-scale 0.05] [-repeat 1] [-gc coenable]
//	       [-backend seq|shard|cluster] [-shards 1] [-nodes a:7472,b:7472]
//	       [-probe 4096] [-min-rate 0]
//	       [-record run.rvt] [-workload wl.rvt] [-json]
//
// -record taps the first connection's stream into a persistent trace (the
// segment format cmd/rvquery replays): a recorded image of what one
// session sent the server, re-checkable offline against any property.
//
// -workload persists the recorded DaCapo workload itself (also the
// segment format, over the instrumentation alphabet): if the file exists
// it is loaded instead of re-recording — comparable runs drive the
// byte-identical workload — otherwise the fresh recording is saved there.
//
// -backend selects each session's per-session backend on the server
// (rvload itself always monitors remotely, against -addr): seq is the
// sequential engine, shard the sharded runtime sized by -shards. Left
// unset it is inferred from -shards. With -backend cluster every
// connection is instead one logical session spread across the rvserve
// nodes listed in -nodes (slices placed by pivot hash); -addr is unused
// — the cluster tier replaces the single server. To drive an rvserve
// router (rvserve -cluster) point -addr at it with the default backend
// instead: a router accepts ordinary remote sessions and does the
// pivot-hashed fan-out server-side.
//
// Every connection is an independent session (its own spec registry
// entry, backend, and remote-object table on the server); object deaths
// recorded in the trace are forwarded as protocol free messages, so the
// server's monitor GC works at full trace fidelity under load. -probe
// issues a Barrier every that many events and records its round-trip time
// — the pipeline-depth-inclusive latency a monitored application would
// see at a synchronization point. -min-rate, when positive, makes rvload
// exit nonzero if aggregate throughput falls below it (CI smoke checks).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"rvgo"
	"rvgo/internal/cliutil"
	"rvgo/internal/dacapo"
	"rvgo/spec"
)

func main() {
	var (
		addr    = flag.String("addr", "localhost:7472", "rvserve address")
		conns   = flag.Int("conns", 8, "concurrent client sessions")
		bench   = flag.String("bench", "avrora", "DaCapo workload profile to record")
		prop    = flag.String("prop", "UnsafeIter", "property each session monitors")
		scale   = flag.Float64("scale", 0.05, "workload scale for the recorded trace")
		repeat  = flag.Int("repeat", 1, "trace replays per connection")
		gcMode  = flag.String("gc", "coenable", "monitor GC policy: coenable, alldead, none")
		backend = flag.String("backend", "", "per-session server backend: seq, shard or cluster (default: inferred from -shards/-nodes)")
		shards  = flag.Int("shards", 1, "shard count for -backend shard")
		nodesFl = flag.String("nodes", "", "comma-separated rvserve node addresses for -backend cluster")
		probe   = flag.Int("probe", 4096, "events between latency probes (Barrier round trips)")
		minRate = flag.Int("min-rate", 0, "fail unless aggregate events/s reaches this (0 = report only)")
		record  = flag.String("record", "", "record the first connection's stream to this trace file (rvquery replays it)")
		workld  = flag.String("workload", "", "persisted workload trace: loaded if it exists, else the fresh recording is saved there")
		jsonOut = flag.Bool("json", false, "emit the report as JSON")
	)
	flag.Parse()
	gc, err := cliutil.ParseGC(*gcMode)
	if err != nil {
		fatalf("%v", err)
	}
	nodes := cliutil.SplitNodes(*nodesFl)
	srvBackend, err := cliutil.ParseBackend(*backend, *shards, "", nodes)
	if err != nil {
		fatalf("%v", err)
	}
	if srvBackend == cliutil.BackendRemote {
		fatalf("-backend remote is implied; rvload sessions always run against -addr")
	}
	clustered := srvBackend == cliutil.BackendCluster
	if *conns < 1 {
		fatalf("-conns must be >= 1, got %d", *conns)
	}
	sp, err := spec.Builtin(*prop)
	if err != nil {
		fatalf("%v", err)
	}
	recordPath := ""
	if *record != "" {
		recordPath, err = cliutil.ValidateRecordPath("-record", *record)
		if err != nil {
			fatalf("%v", err)
		}
	}
	p, ok := dacapo.Get(*bench)
	if !ok {
		fatalf("unknown benchmark %q", *bench)
	}
	var tr *dacapo.Trace
	if *workld != "" {
		if _, statErr := os.Stat(*workld); statErr == nil {
			if tr, err = dacapo.ReadTraceFile(*workld); err != nil {
				fatalf("loading workload %s: %v", *workld, err)
			}
		}
	}
	if tr == nil {
		if tr, err = p.Record(*scale); err != nil {
			fatalf("recording %s: %v", *bench, err)
		}
		if *workld != "" {
			if err := tr.WriteFile(*workld); err != nil {
				fatalf("saving workload %s: %v", *workld, err)
			}
		}
	}

	type connResult struct {
		stats    rvgo.Stats
		probes   []time.Duration
		verdicts uint64
		err      error
	}
	results := make([]connResult, *conns)
	start := time.Now()
	var wg sync.WaitGroup
	for g := 0; g < *conns; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			res := &results[g]
			var verdicts uint64
			opts := []rvgo.Option{
				rvgo.WithGC(gc),
				rvgo.WithVerdictHandler(func(rvgo.Verdict) { verdicts++ }),
			}
			if clustered {
				opts = append(opts, rvgo.WithCluster(nodes...))
			} else {
				opts = append(opts, rvgo.WithRemote(*addr), rvgo.WithShards(*shards))
			}
			if recordPath != "" && g == 0 {
				opts = append(opts, rvgo.WithRecord(recordPath))
			}
			cl, err := rvgo.New(sp, opts...)
			if err != nil {
				res.err = err
				return
			}
			defer cl.Close()
			sink, err := dacapo.Adapt(*prop, cl)
			if err != nil {
				res.err = err
				return
			}
			sent := 0
			probed := sink
			if *probe > 0 {
				probed = func(ev dacapo.Event) {
					sink(ev)
					if sent++; sent%*probe == 0 {
						t0 := time.Now()
						cl.Barrier()
						res.probes = append(res.probes, time.Since(t0))
					}
				}
			}
			// One heap across all replays: remote object IDs come from
			// heap IDs, and a session must never reuse an ID after its
			// free (each replay allocates fresh objects, so a shared heap
			// keeps IDs unique; a fresh heap would restart them at 1).
			h := rvgo.NewHeap()
			h.SetFreeHook(func(o *rvgo.Object) { cl.Free(o) })
			for it := 0; it < *repeat; it++ {
				tr.Replay(h, probed, nil)
			}
			cl.Flush()
			res.stats = cl.Stats()
			res.verdicts = verdicts
			cl.Close() // seals any -record trace (idempotent with the defer)
			res.err = cl.Err()
		}(g)
	}
	wg.Wait()
	wall := time.Since(start)

	var total rvgo.Stats
	var probes []time.Duration
	var verdicts uint64
	for g, res := range results {
		if res.err != nil {
			fatalf("conn %d: %v", g, res.err)
		}
		total.Events += res.stats.Events
		total.Created += res.stats.Created
		total.Flagged += res.stats.Flagged
		total.Collected += res.stats.Collected
		total.GoalVerdicts += res.stats.GoalVerdicts
		probes = append(probes, res.probes...)
		verdicts += res.verdicts
	}
	rate := float64(total.Events) / wall.Seconds()

	if *jsonOut {
		report := map[string]any{
			"conns": *conns, "bench": *bench, "prop": *prop, "scale": *scale,
			"repeat": *repeat, "gc": *gcMode, "shards": *shards,
			"backend": srvBackend.String(), "nodes": len(nodes),
			"events": total.Events, "wall_sec": wall.Seconds(), "events_per_sec": rate,
			"created": total.Created, "flagged": total.Flagged, "collected": total.Collected,
			"verdicts": verdicts,
			"barrier_rtt_ms": map[string]float64{
				"p50": ms(pct(probes, 50)), "p90": ms(pct(probes, 90)),
				"p99": ms(pct(probes, 99)), "max": ms(pct(probes, 100)),
			},
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fatalf("%v", err)
		}
	} else {
		if clustered {
			fmt.Printf("rvload: %d conns × %s/%s scale %g ×%d (gc=%s cluster of %d nodes)\n",
				*conns, *bench, *prop, *scale, *repeat, *gcMode, len(nodes))
		} else {
			fmt.Printf("rvload: %d conns × %s/%s scale %g ×%d (gc=%s shards=%d)\n",
				*conns, *bench, *prop, *scale, *repeat, *gcMode, *shards)
		}
		fmt.Printf("  %d events in %.2fs = %.0f events/s aggregate\n", total.Events, wall.Seconds(), rate)
		fmt.Printf("  monitors: created=%d flagged=%d collected=%d  verdicts=%d\n",
			total.Created, total.Flagged, total.Collected, verdicts)
		if len(probes) > 0 {
			fmt.Printf("  barrier RTT: p50=%.2fms p90=%.2fms p99=%.2fms max=%.2fms (%d probes)\n",
				ms(pct(probes, 50)), ms(pct(probes, 90)), ms(pct(probes, 99)), ms(pct(probes, 100)), len(probes))
		}
	}
	if *minRate > 0 && rate < float64(*minRate) {
		fatalf("aggregate rate %.0f events/s below -min-rate %d", rate, *minRate)
	}
}

// pct returns the p-th percentile (nearest-rank) of the samples, or 0
// when there are none.
func pct(samples []time.Duration, p int) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	idx := len(sorted)*p/100 - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rvload: "+format+"\n", args...)
	os.Exit(1)
}
