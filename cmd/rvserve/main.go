// Command rvserve runs the multi-tenant monitoring server: it accepts
// wire-protocol sessions over TCP (rvgo.WithRemote is the Go client) and
// monitors each session's event stream with its own engine — the paper's
// runtime, deployed as a service, with protocol-level object deaths
// driving the coenable-set monitor GC in place of weak references.
//
// Usage:
//
//	rvserve [-listen :7472] [-window 4096] [-max-shards 16]
//	        [-default-shards 1] [-flight 0] [-drain 10s] [-stats 0]
//	        [-metrics addr] [-record-dir dir] [-v]
//	rvserve -cluster a:7472,b:7472 [-hash-seed N] [-slots 16]
//	        [-listen :7472] [-window 4096] [-drain 10s] [-stats 0]
//	        [-metrics addr] [-v]
//
// Each session chooses its property (from the built-in library or from
// .rv source shipped in the handshake), GC policy, and backend shape
// (sequential or sharded, up to -max-shards). SIGINT/SIGTERM drain
// gracefully: accepting stops, active sessions get -drain to finish their
// streams, stragglers are cut.
//
// With -cluster the process is a router instead of a monitoring node: it
// accepts the same wire-protocol sessions, but fans each one out across
// the listed rvserve nodes, placing every slice by consistent-hashing its
// pivot parameter (seeded by -hash-seed, over -slots hash slots) and
// broadcasting non-pivot events to all nodes. Node failures re-home the
// lost slots onto survivors by journal replay; revived nodes are
// re-admitted by a background health probe. Clients cannot tell a router
// from a node, except that sharded backends (Shards > 1) are refused —
// the cluster already shards by pivot. The node-only flags (-max-shards,
// -default-shards, -flight, -record-dir) are rejected in router mode.
//
// With -metrics the server exposes its introspection surface on a side
// HTTP listener: Prometheus text at /metrics, the JSON status document at
// /statusz (what cmd/rvtop polls; a router's carries node health and
// handoff counters instead of backend shape), and the Go profiling
// endpoints under /debug/pprof/. With -record-dir every session's stream
// is also recorded as a persistent trace (session-<id>.rvt, readable by
// cmd/rvquery).
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rvgo"
	"rvgo/internal/cliutil"
)

func main() {
	var (
		listen        = flag.String("listen", ":7472", "TCP listen address")
		window        = flag.Int("window", 4096, "per-session event-credit window")
		maxShards     = flag.Int("max-shards", 16, "largest per-session backend a client may request")
		defaultShards = flag.Int("default-shards", 1, "backend when the client leaves the choice to the server")
		drain         = flag.Duration("drain", 10*time.Second, "graceful-shutdown budget for active sessions")
		flight        = flag.Int("flight", 0, "per-session flight recorder: dump the last n records on failure verdicts (0 = off)")
		statsEvery    = flag.Duration("stats", 0, "print aggregate stats on this interval (0 = never)")
		metricsAddr   = flag.String("metrics", "", "serve /metrics, /statusz and /debug/pprof on this address (empty = off)")
		recordDir     = flag.String("record-dir", "", "record every session's stream as a trace in this directory (empty = off)")
		clusterFl     = flag.String("cluster", "", "router mode: comma-separated rvserve node addresses to fan sessions out over")
		hashSeed      = flag.Uint64("hash-seed", 0, "router mode: seed perturbing the pivot and node hashes")
		slots         = flag.Int("slots", 0, "router mode: virtual hash slots per session (0 = default)")
		verbose       = flag.Bool("v", false, "log session lifecycle events")
	)
	flag.Parse()
	if *clusterFl != "" {
		runRouter(*clusterFl, *listen, *window, *hashSeed, *slots, *drain, *statsEvery, *metricsAddr, *verbose)
		return
	}
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "hash-seed", "slots":
			fatalf("-%s applies only to router mode (-cluster)", f.Name)
		}
	})
	if err := cliutil.ValidateShards(*defaultShards); err != nil {
		fatalf("-default-shards: %v", err)
	}
	if err := cliutil.ValidateShards(*maxShards); err != nil {
		fatalf("-max-shards: %v", err)
	}

	if *flight < 0 {
		fatalf("-flight: window size must be >= 0, got %d", *flight)
	}
	opts := rvgo.ServerOptions{
		Window:        *window,
		MaxShards:     *maxShards,
		DefaultShards: *defaultShards,
		FlightWindow:  *flight,
		RecordDir:     *recordDir,
	}
	if *verbose || *flight > 0 {
		// Flight-window dumps ride the session log stream.
		opts.Logf = log.Printf
	}
	srv := rvgo.NewServer(opts)

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		fatalf("%v", err)
	}
	log.Printf("rvserve: listening on %s (window=%d, max-shards=%d)", l.Addr(), *window, *maxShards)

	if *metricsAddr != "" {
		ml, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fatalf("-metrics: %v", err)
		}
		log.Printf("rvserve: metrics on http://%s/metrics (statusz, pprof alongside)", ml.Addr())
		go func() {
			if err := http.Serve(ml, srv.DebugHandler()); err != nil {
				log.Printf("rvserve: metrics listener: %v", err)
			}
		}()
	}

	if *statsEvery > 0 {
		go func() {
			for range time.Tick(*statsEvery) {
				st := srv.Stats()
				log.Printf("rvserve: sessions=%d/%d events=%d verdicts=%d",
					st.ActiveSessions, st.TotalSessions, st.Events, st.Verdicts)
			}
		}()
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()

	select {
	case sig := <-sigs:
		log.Printf("rvserve: %v — draining (budget %s)", sig, *drain)
		srv.Shutdown(*drain)
		<-done
	case err := <-done:
		if err != nil {
			fatalf("%v", err)
		}
	}
	st := srv.Stats()
	log.Printf("rvserve: served %d sessions, %d events, %d verdicts", st.TotalSessions, st.Events, st.Verdicts)
}

// runRouter is rvserve's -cluster mode: a router fanning wire-protocol
// sessions out across the listed nodes instead of monitoring them itself.
// The node-only flags must stay unset — a router has no backend of its
// own to shape, record or flight-record.
func runRouter(nodeList, listen string, window int, seed uint64, slots int, drain, statsEvery time.Duration, metricsAddr string, verbose bool) {
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "max-shards", "default-shards", "flight", "record-dir":
			fatalf("-%s applies only to node mode; a router (-cluster) has no backend of its own", f.Name)
		}
	})
	nodes := cliutil.SplitNodes(nodeList)
	if len(nodes) == 0 {
		fatalf("-cluster: empty node list")
	}
	opts := rvgo.RouterOptions{
		Nodes:  nodes,
		Seed:   seed,
		Slots:  slots,
		Window: window,
	}
	if verbose {
		opts.Logf = log.Printf
	}
	rtr, err := rvgo.NewRouter(opts)
	if err != nil {
		fatalf("%v", err)
	}

	l, err := net.Listen("tcp", listen)
	if err != nil {
		fatalf("%v", err)
	}
	log.Printf("rvserve: routing on %s across %d nodes (window=%d, seed=%d)", l.Addr(), len(nodes), window, seed)

	if metricsAddr != "" {
		ml, err := net.Listen("tcp", metricsAddr)
		if err != nil {
			fatalf("-metrics: %v", err)
		}
		log.Printf("rvserve: metrics on http://%s/metrics (statusz, pprof alongside)", ml.Addr())
		go func() {
			if err := http.Serve(ml, rtr.DebugHandler()); err != nil {
				log.Printf("rvserve: metrics listener: %v", err)
			}
		}()
	}

	if statsEvery > 0 {
		go func() {
			for range time.Tick(statsEvery) {
				st := rtr.Statusz()
				log.Printf("rvserve: sessions=%d/%d events=%d verdicts=%d handoffs=%d",
					st.Active, st.Total, st.Events, st.Verdicts, st.Handoffs)
			}
		}()
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- rtr.Serve(l) }()

	select {
	case sig := <-sigs:
		log.Printf("rvserve: %v — draining (budget %s)", sig, drain)
		rtr.Shutdown(drain)
		<-done
	case err := <-done:
		if err != nil {
			fatalf("%v", err)
		}
	}
	st := rtr.Statusz()
	log.Printf("rvserve: routed %d sessions, %d events, %d verdicts (%d slot handoffs)",
		st.Total, st.Events, st.Verdicts, st.Handoffs)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rvserve: "+format+"\n", args...)
	os.Exit(1)
}
