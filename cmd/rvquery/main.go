// Command rvquery is the retroactive monitor: it replays a recorded trace
// (rvgo.WithRecord, rvmon -record, rvload -record, or rvbench's recorder)
// through fresh monitors of any property and reports the verdicts and
// settled counters the online run would have produced — bit-identically,
// for the recorded property, under every GC policy and worker count.
//
// Usage:
//
//	rvquery -trace run.rvt [-prop UnsafeIter | -spec prop.rv]
//	        [-gc coenable|alldead|none] [-backend seq|shard] [-shards 4]
//	        [-parallel 0] [-pivots 1,2,3] [-avoid off|audit|enforce]
//	        [-profile] [-verdicts] [-json]
//
// The query property need not be the recorded one: events are matched by
// name (unknown ones skip), so a trace recorded while monitoring one
// property answers later questions about any property over the same
// alphabet. -parallel replays segments across N workers partitioned by
// the recorded pivot index — the offline image of the sharded runtime —
// and -pivots restricts the replay to the given slices, skipping segments
// the pivot index proves irrelevant. A trace with a torn tail (crashed
// recorder) is truncated to its last intact segment and reported.
//
// -avoid replays with the creation-avoidance guards on (audit counts
// would-be-suppressed creations, enforce suppresses them; see DESIGN.md
// "Static creation avoidance"). -profile collects per-creation-site
// statistics — monitors created, re-stepped, ever reaching a goal — over
// a sequential replay and prints the property's avoidance report: the
// static creation guards side by side with what the recorded trace shows
// each site actually did. The profile is the input to profile-guided
// creation avoidance (rvgo.WithProfileGuards, rvbench -avoid).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"rvgo"
	"rvgo/internal/cliutil"
	"rvgo/spec"
)

func main() {
	var (
		tracePath = flag.String("trace", "", "recorded trace to query (required)")
		prop      = flag.String("prop", "", "built-in property to check")
		specFile  = flag.String("spec", "", "path to a .rv specification to check")
		gcMode    = flag.String("gc", "coenable", "monitor GC policy: coenable, alldead, none")
		backend   = flag.String("backend", "", "replay backend: seq or shard (default: inferred from -shards)")
		shards    = flag.Int("shards", 1, "worker count for -backend shard")
		parallel  = flag.Int("parallel", 0, "parallel replay workers (overrides -backend/-shards)")
		pivots    = flag.String("pivots", "", "comma-separated pivot object IDs to restrict the query to")
		avoidFl   = flag.String("avoid", "off", "creation-guard mode for the replay: off, audit, enforce")
		profileFl = flag.Bool("profile", false, "collect per-creation-site statistics and print the avoidance report (sequential replay only)")
		verdicts  = flag.Bool("verdicts", false, "print each goal verdict")
		jsonOut   = flag.Bool("json", false, "emit the report as JSON")
	)
	flag.Parse()
	if *tracePath == "" {
		fatalf("missing -trace")
	}
	gc, err := cliutil.ParseGC(*gcMode)
	if err != nil {
		fatalf("%v", err)
	}
	avoid, err := cliutil.ParseAvoid(*avoidFl)
	if err != nil {
		fatalf("-avoid: %v", err)
	}
	bk, err := cliutil.ParseBackend(*backend, *shards, "", nil)
	if err != nil {
		fatalf("%v", err)
	}
	if bk == cliutil.BackendRemote || bk == cliutil.BackendCluster {
		fatalf("-backend %v: retroactive queries replay in-process", bk)
	}
	workers := 1
	if bk == cliutil.BackendShard {
		workers = *shards
	}
	if *parallel > 0 {
		workers = *parallel
	}
	// With -profile the property is resolved through the public spec
	// package, whose compiled form drives the replay: the per-site profile
	// and the avoidance report must describe the same specification.
	var fs *spec.Spec
	var profile *rvgo.CreationProfile
	sp, err := cliutil.LoadQuerySpec(*prop, *specFile)
	if err != nil {
		fatalf("%v", err)
	}
	if *profileFl {
		if workers > 1 {
			fatalf("-profile: per-site profiling requires sequential replay (drop -parallel/-backend shard)")
		}
		if fs, err = loadFacadeSpec(*prop, *specFile); err != nil {
			fatalf("%v", err)
		}
		sp = fs.Compiled()
		profile = rvgo.NewCreationProfile(fs)
	}
	ids, err := parsePivots(*pivots)
	if err != nil {
		fatalf("-pivots: %v", err)
	}

	q := cliutil.RetroQuery{
		GC:      gc,
		Avoid:   avoid,
		Profile: profile,
		Workers: workers,
		Pivots:  ids,
		OnVerdict: cliutil.VerdictLines(sp, func(line string) {
			if *verdicts {
				fmt.Println("verdict " + line)
			}
		}),
	}
	start := time.Now()
	res, err := cliutil.RunRetroQuery(*tracePath, sp, q)
	if err != nil {
		fatalf("%v", err)
	}
	wall := time.Since(start)
	rate := float64(res.Stats.Events) / wall.Seconds()

	if *jsonOut {
		report := map[string]any{
			"trace": *tracePath, "prop": sp.Name, "gc": *gcMode, "workers": workers,
			"segments": res.Segments, "truncated": res.Truncated,
			"events": res.Stats.Events, "wall_sec": wall.Seconds(), "events_per_sec": rate,
			"created": res.Stats.Created, "flagged": res.Stats.Flagged,
			"collected": res.Stats.Collected, "goal_verdicts": res.Stats.GoalVerdicts,
			"steps": res.Stats.Steps, "live": res.Stats.Live,
			"avoid": avoid.String(), "avoided": res.Stats.Avoided,
			"frees": res.Replay.Frees, "broadcast": res.Replay.Broadcast,
			"events_skipped": res.Replay.EventsSkipped, "segments_skimmed": res.Replay.SegmentsSkimmed,
			"unknown_skipped": res.Replay.UnknownSkipped,
		}
		if profile != nil {
			rep, err := fs.Avoidance(profile)
			if err != nil {
				fatalf("%v", err)
			}
			report["avoidance"] = rep
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fatalf("%v", err)
		}
		return
	}
	fmt.Printf("rvquery: %s over %s (gc=%s workers=%d avoid=%s)\n", sp.Name, *tracePath, *gcMode, workers, avoid)
	fmt.Printf("  %d segments%s, %d events replayed in %.3fs = %.0f events/s\n",
		res.Segments, truncNote(res.Truncated), res.Stats.Events, wall.Seconds(), rate)
	fmt.Printf("  monitors: created=%d flagged=%d collected=%d live=%d verdicts=%d steps=%d avoided=%d\n",
		res.Stats.Created, res.Stats.Flagged, res.Stats.Collected, res.Stats.Live,
		res.Stats.GoalVerdicts, res.Stats.Steps, res.Stats.Avoided)
	if res.Replay.EventsSkipped > 0 || res.Replay.SegmentsSkimmed > 0 || res.Replay.UnknownSkipped > 0 {
		fmt.Printf("  skipped: %d events (pivot filter), %d segments skimmed by index, %d unknown events\n",
			res.Replay.EventsSkipped, res.Replay.SegmentsSkimmed, res.Replay.UnknownSkipped)
	}
	if profile != nil {
		rep, err := fs.Avoidance(profile)
		if err != nil {
			fatalf("%v", err)
		}
		rep.Write(os.Stdout)
	}
}

// loadFacadeSpec resolves the -profile property through the public spec
// package (mirroring cliutil.LoadQuerySpec's flag semantics), so the
// avoidance report and the replayed engine share one compiled spec.
func loadFacadeSpec(prop, specFile string) (*spec.Spec, error) {
	switch {
	case prop != "" && specFile != "":
		return nil, fmt.Errorf("-prop and -spec are mutually exclusive")
	case prop != "":
		return spec.Builtin(prop)
	case specFile != "":
		src, err := os.ReadFile(specFile)
		if err != nil {
			return nil, err
		}
		specs, err := spec.Parse(string(src))
		if err != nil {
			return nil, err
		}
		if len(specs) != 1 {
			return nil, fmt.Errorf("%s defines %d properties; -profile analyzes exactly one", specFile, len(specs))
		}
		return specs[0], nil
	}
	return nil, fmt.Errorf("need -prop or -spec")
}

func parsePivots(s string) ([]uint64, error) {
	if s == "" {
		return nil, nil
	}
	var ids []uint64
	for _, part := range strings.Split(s, ",") {
		id, err := strconv.ParseUint(strings.TrimSpace(part), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad pivot ID %q", part)
		}
		ids = append(ids, id)
	}
	return ids, nil
}

func truncNote(t bool) string {
	if t {
		return " (torn tail truncated)"
	}
	return ""
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rvquery: "+format+"\n", args...)
	os.Exit(1)
}
