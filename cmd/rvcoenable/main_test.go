package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the testdata/*.golden files from the current report output")

// TestGoldenOutput pins the rvcoenable report for every DaCapo property —
// the full Section 3 analysis and the -guards avoidance summary — against
// golden files. Regenerate with `go test ./cmd/rvcoenable -update` after a
// deliberate format change and review the diff.
func TestGoldenOutput(t *testing.T) {
	cases := []struct {
		name   string
		prop   string
		guards bool
	}{
		{"unsafeiter", "UnsafeIter", false},
		{"unsafeiter_guards", "UnsafeIter", true},
		{"hasnext", "HasNext", false},
		{"unsafemapiter", "UnsafeMapIter", false},
		{"unsafesynccoll", "UnsafeSyncColl", false},
		{"unsafesyncmap", "UnsafeSyncMap", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			specs, err := resolveSpecs("", tc.prop)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := writeReport(&buf, specs, tc.guards); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", tc.name+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v — run `go test ./cmd/rvcoenable -update` to create it", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("report for %s differs from %s:\n got:\n%s\nwant:\n%s\nIf the change is deliberate, regenerate with -update and review the diff.",
					tc.prop, path, buf.Bytes(), want)
			}
		})
	}
}
