// Command rvcoenable prints the static analyses of the paper's Section 3
// for a specification: the coenable sets per event, their parameter images
// (Definition 11), the minimized ALIVENESS boolean formulas evaluated at
// runtime (§4.2.2), and the enable sets with creation events.
//
// With no -spec argument it prints the analysis for the built-in
// UNSAFEITER property, reproducing the worked example of Section 3.
//
// Usage:
//
//	rvcoenable [-spec file.rv | -prop UnsafeIter]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"rvgo/internal/coenable"
	"rvgo/internal/monitor"
	"rvgo/internal/props"
	"rvgo/internal/spec"
)

func main() {
	var (
		specPath = flag.String("spec", "", "path to an .rv specification")
		propName = flag.String("prop", "", "name of a built-in property (see -list)")
		list     = flag.Bool("list", false, "list built-in properties")
	)
	flag.Parse()
	if *list {
		fmt.Println(strings.Join(props.Names(), "\n"))
		return
	}

	var specs []*monitor.Spec
	switch {
	case *specPath != "":
		src, err := os.ReadFile(*specPath)
		if err != nil {
			fatalf("%v", err)
		}
		prop, err := spec.Parse(string(src))
		if err != nil {
			fatalf("%v", err)
		}
		compiled, err := prop.Compile()
		if err != nil {
			fatalf("%v", err)
		}
		for _, c := range compiled {
			specs = append(specs, c.Spec)
		}
	case *propName != "":
		s, err := props.Build(*propName)
		if err != nil {
			fatalf("%v", err)
		}
		specs = append(specs, s)
	default:
		s, err := props.Build("UnsafeIter")
		if err != nil {
			fatalf("%v", err)
		}
		specs = append(specs, s)
	}

	for _, s := range specs {
		printAnalysis(s)
	}
}

func printAnalysis(s *monitor.Spec) {
	an, err := s.Analysis()
	if err != nil {
		fatalf("%v", err)
	}
	alphabet := make([]string, len(s.Events))
	for i, e := range s.Events {
		alphabet[i] = e.Name
	}
	goalNames := make([]string, len(s.Goal))
	for i, g := range s.Goal {
		goalNames[i] = string(g)
	}
	fmt.Printf("property %s(%s), goal G = {%s}\n",
		s.Name, strings.Join(s.Params, ", "), strings.Join(goalNames, ", "))
	if !an.HasCoenable {
		fmt.Printf("  (no coenable analysis for this goal/formalism: monitors fall back to\n")
		fmt.Printf("   all-parameters-dead collection plus sink termination)\n\n")
		return
	}
	fmt.Println("  coenable sets (events occurring after e in goal traces):")
	for sym, e := range s.Events {
		fmt.Printf("    COENABLE(%s)%s= %s\n", e.Name, pad(e.Name, alphabet),
			coenable.FormatEventSets(an.CoenEvents[sym], alphabet))
	}
	fmt.Println("  parameter coenable sets (Definition 11):")
	for sym, e := range s.Events {
		fmt.Printf("    COENABLE^X(%s)%s= %s\n", e.Name, pad(e.Name, alphabet),
			coenable.FormatParamSets(an.CoenParams[sym], s.Params))
	}
	fmt.Println("  ALIVENESS formulas (§4.2.2, minimized):")
	for sym, e := range s.Events {
		fmt.Printf("    ALIVENESS(%s)%s= %s\n", e.Name, pad(e.Name, alphabet),
			coenable.AlivenessFormula(an.CoenParams[sym], s.Params))
	}
	fmt.Println("  enable sets (events occurring before e; ∅ ⇒ creation event):")
	for sym, e := range s.Events {
		marker := ""
		if an.Creation[sym] {
			marker = "   [creation event]"
		}
		fmt.Printf("    ENABLE(%s)%s= %s%s\n", e.Name, pad(e.Name, alphabet),
			coenable.FormatEventSets(an.EnableEvents[sym], alphabet), marker)
	}
	fmt.Println()
}

func pad(name string, alphabet []string) string {
	max := 0
	for _, a := range alphabet {
		if len(a) > max {
			max = len(a)
		}
	}
	return strings.Repeat(" ", max-len(name)+1)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rvcoenable: "+format+"\n", args...)
	os.Exit(1)
}
