// Command rvcoenable prints the static analyses of the paper's Section 3
// for a specification: the coenable sets per event, their parameter images
// (Definition 11), the minimized ALIVENESS boolean formulas evaluated at
// runtime (§4.2.2), the enable sets with creation events, and the creation
// guards of the doomed-monitor analysis (DESIGN.md "Static creation
// avoidance").
//
// With no -spec argument it prints the analysis for the built-in
// UNSAFEITER property, reproducing the worked example of Section 3.
//
// Usage:
//
//	rvcoenable [-spec file.rv | -prop UnsafeIter] [-guards]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"rvgo/spec"
)

func main() {
	var (
		specPath = flag.String("spec", "", "path to an .rv specification")
		propName = flag.String("prop", "", "name of a built-in property (see -list)")
		guards   = flag.Bool("guards", false, "print the creation-avoidance report instead of the full analysis")
		list     = flag.Bool("list", false, "list built-in properties")
	)
	flag.Parse()
	if *list {
		fmt.Println(strings.Join(spec.BuiltinNames(), "\n"))
		return
	}

	specs, err := resolveSpecs(*specPath, *propName)
	if err != nil {
		fatalf("%v", err)
	}
	if err := writeReport(os.Stdout, specs, *guards); err != nil {
		fatalf("%v", err)
	}
}

// resolveSpecs loads the properties to analyze: an .rv file, a named
// built-in, or the Section 3 worked example.
func resolveSpecs(specPath, propName string) ([]*spec.Spec, error) {
	switch {
	case specPath != "":
		src, err := os.ReadFile(specPath)
		if err != nil {
			return nil, err
		}
		return spec.Parse(string(src))
	case propName != "":
		s, err := spec.Builtin(propName)
		if err != nil {
			return nil, err
		}
		return []*spec.Spec{s}, nil
	default:
		s, err := spec.Builtin("UnsafeIter")
		if err != nil {
			return nil, err
		}
		return []*spec.Spec{s}, nil
	}
}

// writeReport prints each property's analysis — the full Section 3 report
// or, with guards set, the creation-avoidance summary alone.
func writeReport(w io.Writer, specs []*spec.Spec, guards bool) error {
	for _, s := range specs {
		if guards {
			r, err := s.Avoidance(nil)
			if err != nil {
				return err
			}
			r.Write(w)
			continue
		}
		if err := s.WriteAnalysis(w); err != nil {
			return err
		}
	}
	return nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rvcoenable: "+format+"\n", args...)
	os.Exit(1)
}
