// Command rvcoenable prints the static analyses of the paper's Section 3
// for a specification: the coenable sets per event, their parameter images
// (Definition 11), the minimized ALIVENESS boolean formulas evaluated at
// runtime (§4.2.2), and the enable sets with creation events.
//
// With no -spec argument it prints the analysis for the built-in
// UNSAFEITER property, reproducing the worked example of Section 3.
//
// Usage:
//
//	rvcoenable [-spec file.rv | -prop UnsafeIter]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"rvgo/spec"
)

func main() {
	var (
		specPath = flag.String("spec", "", "path to an .rv specification")
		propName = flag.String("prop", "", "name of a built-in property (see -list)")
		list     = flag.Bool("list", false, "list built-in properties")
	)
	flag.Parse()
	if *list {
		fmt.Println(strings.Join(spec.BuiltinNames(), "\n"))
		return
	}

	var specs []*spec.Spec
	switch {
	case *specPath != "":
		src, err := os.ReadFile(*specPath)
		if err != nil {
			fatalf("%v", err)
		}
		parsed, err := spec.Parse(string(src))
		if err != nil {
			fatalf("%v", err)
		}
		specs = parsed
	case *propName != "":
		s, err := spec.Builtin(*propName)
		if err != nil {
			fatalf("%v", err)
		}
		specs = append(specs, s)
	default:
		s, err := spec.Builtin("UnsafeIter")
		if err != nil {
			fatalf("%v", err)
		}
		specs = append(specs, s)
	}

	for _, s := range specs {
		if err := s.WriteAnalysis(os.Stdout); err != nil {
			fatalf("%v", err)
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rvcoenable: "+format+"\n", args...)
	os.Exit(1)
}
