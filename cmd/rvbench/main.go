// Command rvbench regenerates the paper's evaluation artifacts: Figure
// 9(A) percent runtime overhead, Figure 9(B) peak memory, and Figure 10
// monitoring statistics, over the synthetic DaCapo substrate.
//
// Usage:
//
//	rvbench [-table fig9a|fig9b|fig10|retained|micro|metrics|all] [-scale 0.1]
//	        [-timeout 60s] [-bench bloat,pmd,...] [-prop HasNext,...]
//	        [-backend seq|shard|remote|cluster] [-shards N] [-remote addr]
//	        [-nodes a:7472,b:7472] [-guard off|audit|enforce] [-live] [-retro]
//	        [-avoid] [-cluster -min-speedup X] [-json] [-out run.json]
//	        [-compare BENCH_X.json -tolerance T] [-v]
//
// -backend selects where the RV and MOP cells run: the sequential engine
// (seq, the default), the sharded concurrent runtime (shard, sized by
// -shards), or sessions against an rvserve monitoring server (remote,
// addressed by -remote). Left unset it is inferred from the modifier
// flags. -json emits
// the full result grid as machine-readable JSON instead of the tables, so
// runs can be archived (BENCH_*.json) and compared across revisions; -out
// writes the same JSON to a file as well (CI uploads it as an artifact).
// Every grid includes the hot-path micro section (ns/event and
// allocs/event over fixed warmed loops); -compare gates on exact counter
// equality, bounded runtime drift, and a tight allocs/event limit — the
// allocation numbers are deterministic, so the allocation gate catches a
// hot-path regression that CI timing noise would hide.
// -live runs the live-object ingestion experiment instead of the DaCapo
// grid: real Go objects monitored through the rv frontend, with monitor
// reclamation driven by real, pinned garbage-collection cycles.
// -retro runs the retroactive-monitoring tier instead: one monitored
// workload recorded to the persistent trace store, replayed sequentially
// and in parallel over the recorded pivot index, with verdicts and
// settled counters verified bit-identical to the online run. Its JSON
// (the grid's Retro section) is archived by the bench CI job like any
// other run.
// -avoid runs the creation-avoidance tier instead: one monitored workload
// recorded to the trace store and replayed under every creation-guard
// configuration — static guards in audit and enforce modes under both
// creation strategies, plus the profile-guided mode fed by the recorded
// trace's per-creation-site statistics — with the suppression contract
// (verdicts preserved, Created + Avoided == unguarded Created) verified
// on every leg. -guard applies the static guards to the DaCapo grid's
// RV/MOP cells themselves (any backend; audit is bit-identical).
// -cluster runs the cluster comparison tier instead: the same recorded
// multi-pivot workload monitored through a single remote session and a
// pivot-hashed cluster session over four in-process rvserve nodes, with
// the two runs verified to settle identically; -min-speedup optionally
// gates on the cluster/single speedup (its JSON is the grid's Cluster
// section). A grid run can also place its RV/MOP cells on a real cluster
// with -backend cluster -nodes.
//
// Scale 1.0 corresponds to roughly 1/50 of the paper's event volumes; the
// default keeps the full grid under a few minutes. Absolute numbers are
// not comparable to the paper's Pentium-4 JVM measurements — the shapes
// (which system wins, by what factor, where Tracematches times out) are
// what the harness reproduces. See DESIGN.md's experiment index.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"rvgo/internal/cliutil"
	"rvgo/internal/eval"
)

func main() {
	var (
		table    = flag.String("table", "all", "which table to print: fig9a, fig9b, fig10, retained, micro, metrics, all")
		scale    = flag.Float64("scale", 0.1, "workload scale (1.0 ≈ paper/50)")
		timeout  = flag.Duration("timeout", 60*time.Second, "per-cell time budget (exceeded = ∞)")
		benchs   = flag.String("bench", "", "comma-separated benchmark subset (default: all 15)")
		prs      = flag.String("prop", "", "comma-separated property subset (default: the paper's five)")
		backend  = flag.String("backend", "", "RV/MOP backend: seq, shard, remote, cluster (default: inferred from -shards/-remote/-nodes)")
		shards   = flag.Int("shards", 1, "shard count for -backend shard")
		remote   = flag.String("remote", "", "rvserve address for -backend remote")
		nodesFl  = flag.String("nodes", "", "comma-separated rvserve node addresses for -backend cluster")
		clusterT = flag.Bool("cluster", false, "run the cluster comparison tier (N in-process nodes vs a single node) instead of the DaCapo grid")
		minSpeed = flag.Float64("min-speedup", 0, "with -cluster: fail unless cluster/single speedup reaches this (0 = report only)")
		live     = flag.Bool("live", false, "run the live-object ingestion experiment (rv frontend, real Go GC)")
		retro    = flag.Bool("retro", false, "run the retroactive-monitoring tier (record, replay, verify identity)")
		avoid    = flag.Bool("avoid", false, "run the creation-avoidance tier (record, replay under every guard configuration, verify the suppression contract)")
		guard    = flag.String("guard", "off", "creation-guard mode for the grid's RV/MOP cells: off, audit, enforce")
		jsonOut  = flag.Bool("json", false, "emit the result grid as JSON instead of tables")
		outPath  = flag.String("out", "", "also write the current run's JSON to this file (works with -compare; CI uploads it as an artifact)")
		compare  = flag.String("compare", "", "baseline JSON (from -json): rerun its config and fail on regressions")
		tol      = flag.Float64("tolerance", 1.0, "with -compare: allowed relative runtime regression (1.0 = 2x)")
		verbose  = flag.Bool("v", false, "print per-cell progress")
	)
	flag.Parse()

	nodes := cliutil.SplitNodes(*nodesFl)
	if _, err := cliutil.ParseBackend(*backend, *shards, *remote, nodes); err != nil {
		fatalf("%v", err)
	}
	guardMode, err := cliutil.ParseAvoid(*guard)
	if err != nil {
		fatalf("-guard: %v", err)
	}
	cfg := eval.DefaultConfig()
	cfg.Scale = *scale
	cfg.Timeout = *timeout
	cfg.Shards = *shards
	cfg.Remote = *remote
	cfg.Nodes = nodes
	cfg.Avoid = guardMode
	if *benchs != "" {
		cfg.Benchmarks = splitList(*benchs)
		for _, b := range cfg.Benchmarks {
			if err := cliutil.ValidateBench(b); err != nil {
				fatalf("%v", err)
			}
		}
	}
	if *prs != "" {
		cfg.Properties = splitList(*prs)
		for _, p := range cfg.Properties {
			if err := cliutil.ValidateProp(p); err != nil {
				fatalf("%v", err)
			}
		}
	}

	var progress io.Writer
	if *verbose {
		progress = os.Stderr
	}

	if *compare != "" {
		compareBaseline(*compare, *tol, cfg, *outPath, progress)
		return
	}
	if *live {
		runLive(eval.LiveConfig{Scale: *scale, Shards: *shards}, *jsonOut, *outPath)
		return
	}
	if *clusterT {
		ccfg := eval.ClusterConfig{Scale: *scale}
		if len(cfg.Benchmarks) > 0 && *benchs != "" {
			ccfg.Bench = cfg.Benchmarks[0]
		}
		if len(cfg.Properties) > 0 && *prs != "" {
			ccfg.Prop = cfg.Properties[0]
		}
		runCluster(ccfg, cfg, *minSpeed, *jsonOut, *outPath)
		return
	}
	if *retro {
		rcfg := eval.RetroConfig{Scale: *scale}
		if len(cfg.Benchmarks) > 0 && *benchs != "" {
			rcfg.Bench = cfg.Benchmarks[0]
		}
		if len(cfg.Properties) > 0 && *prs != "" {
			rcfg.Prop = cfg.Properties[0]
		}
		if *shards > 1 {
			rcfg.Workers = []int{1, *shards}
		}
		runRetro(rcfg, cfg, *jsonOut, *outPath)
		return
	}
	if *avoid {
		acfg := eval.AvoidConfig{Scale: *scale}
		if len(cfg.Benchmarks) > 0 && *benchs != "" {
			acfg.Bench = cfg.Benchmarks[0]
		}
		if len(cfg.Properties) > 0 && *prs != "" {
			acfg.Prop = cfg.Properties[0]
		}
		runAvoid(acfg, cfg, *jsonOut, *outPath)
		return
	}

	res, err := eval.Run(cfg, progress)
	if err != nil {
		fatalf("%v", err)
	}
	writeOut(*outPath, res)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fatalf("%v", err)
		}
		return
	}
	switch *table {
	case "fig9a":
		res.Fig9A(os.Stdout)
	case "fig9b":
		res.Fig9B(os.Stdout)
	case "fig10":
		res.Fig10(os.Stdout)
	case "retained":
		res.Retained(os.Stdout)
	case "micro":
		res.MicroTable(os.Stdout)
	case "metrics":
		res.MetricsTable(os.Stdout)
	case "all":
		res.Fig9A(os.Stdout)
		res.Fig9B(os.Stdout)
		res.Fig10(os.Stdout)
		res.Retained(os.Stdout)
		res.MicroTable(os.Stdout)
		res.MetricsTable(os.Stdout)
	default:
		fatalf("unknown table %q", *table)
	}
}

// writeOut archives a run's JSON for CI artifacts / new baselines.
func writeOut(path string, res *eval.Results) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fatalf("%v", err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		fatalf("%v", err)
	}
	if err := f.Close(); err != nil {
		fatalf("%v", err)
	}
}

// runLive runs the live-object ingestion experiment and its scale tier,
// and prints their tables: the Figure 10 counters per GC policy with
// deaths delivered by the real garbage collector at pinned collection
// points, then the slab store's host-GC cost a decade of live monitors
// apart. With -out (or -json) the combined report is archived as the
// -live artifact.
func runLive(cfg eval.LiveConfig, jsonOut bool, outPath string) {
	results, err := eval.RunLive(cfg)
	if err != nil {
		fatalf("%v", err)
	}
	scaleRes, err := eval.RunLiveScale(cfg)
	if err != nil {
		fatalf("%v", err)
	}
	report := &eval.LiveReport{Policies: results, Scale: scaleRes}
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			fatalf("%v", err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fatalf("%v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("%v", err)
		}
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fatalf("%v", err)
		}
		return
	}
	fmt.Println("live-object ingestion (rv frontend, real Go GC; see DESIGN.md)")
	fmt.Printf("%-10s %10s %10s %10s %10s %8s %8s %9s %8s %10s\n",
		"policy", "events", "created", "flagged", "collected", "live", "deaths", "gc-pinned", "sec", "gc-pause")
	for _, r := range results {
		mark := ""
		if !r.Settled {
			mark = "  (unsettled: some cleanups never fired)"
		}
		fmt.Printf("%-10s %10d %10d %10d %10d %8d %8d %9d %8.2f %8.1fms%s\n",
			r.Policy, r.Stats.Events, r.Stats.Created, r.Stats.Flagged, r.Stats.Collected,
			r.Stats.Live, r.Delivered, r.GCPinned, r.RunSec, r.GCPauseSec*1e3, mark)
	}
	s := scaleRes
	fmt.Println("\nscale tier (slab arena store vs host collector, 5 forced GCs per point)")
	fmt.Printf("%-14s %10s %12s %7s %10s %10s %10s\n",
		"live monitors", "gc-pause", "pause/mon", "slabs", "arena-cap", "occupancy", "sublinear")
	fmt.Printf("%-14d %8.2fms %10.1fns %7s %10s %10s %10s\n",
		s.SmallMonitors, s.SmallPauseSec*1e3, s.SmallPauseSec*1e9/float64(s.SmallMonitors), "-", "-", "-", "-")
	fmt.Printf("%-14d %8.2fms %10.1fns %7d %10d %9.1f%% %10v\n",
		s.BigMonitors, s.BigPauseSec*1e3, s.BigPauseSec*1e9/float64(s.BigMonitors),
		s.Arena.Slabs, s.Arena.Cap, s.Occupancy*100, s.Sublinear)
	if !s.Sublinear {
		fmt.Println("  WARNING: host-GC pause grew with monitor count; the store should be noscan")
	}
}

// runRetro runs the retroactive-monitoring tier, prints its table, and
// archives the result as a grid whose Retro section carries the
// measurements (so bench CI uploads it like any other run). A replay that
// is not bit-identical to the online run is a hard failure.
func runRetro(rcfg eval.RetroConfig, cfg eval.Config, jsonOut bool, outPath string) {
	rr, err := eval.RunRetro(rcfg)
	if err != nil {
		fatalf("%v", err)
	}
	res := &eval.Results{Config: cfg, Retro: rr}
	writeOut(outPath, res)
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fatalf("%v", err)
		}
	} else {
		fmt.Printf("retroactive monitoring: %s/%s (persistent trace store; see DESIGN.md)\n", rr.Bench, rr.Prop)
		fmt.Printf("  online: %d events in %.2fs = %.0f events/s (seq engine); trace %.2f MB, %d segments\n",
			rr.Online.Events, rr.OnlineSec, rr.OnlineRate, rr.TraceMB, rr.Segments)
		fmt.Printf("%-9s %12s %8s %9s %10s\n", "workers", "events/s", "sec", "speedup", "identical")
		for _, run := range rr.Runs {
			fmt.Printf("%-9d %12.0f %8.3f %8.1fx %10v\n", run.Workers, run.Rate, run.Sec, run.Speedup, run.Identical)
		}
		if s := rr.Selective; s != nil {
			fmt.Printf("  selective query (pivot %d): %.0f events/s coverage = %.1fx online (%d dispatched, %d index-skipped, %d/%d segments skimmed, identical=%v)\n",
				s.Pivot, s.Coverage, s.Speedup, s.Dispatched, s.Skipped, s.Skimmed, rr.Segments, s.Identical)
		}
	}
	for _, run := range rr.Runs {
		if !run.Identical {
			fatalf("replay ×%d diverged from the online run", run.Workers)
		}
	}
	if rr.Selective != nil && !rr.Selective.Identical {
		fatalf("selective query (pivot %d) diverged from the online run", rr.Selective.Pivot)
	}
}

// runAvoid runs the creation-avoidance tier, prints its tables, and
// archives the result as a grid whose Avoid section carries the
// measurements. A guarded replay that breaks the suppression contract —
// or a full-strategy enforce leg whose guard never fires — is a hard
// failure: the tier exists to show a measurable Created reduction with
// every verdict preserved.
func runAvoid(acfg eval.AvoidConfig, cfg eval.Config, jsonOut bool, outPath string) {
	ar, err := eval.RunAvoid(acfg)
	if err != nil {
		fatalf("%v", err)
	}
	res := &eval.Results{Config: cfg, Avoid: ar}
	writeOut(outPath, res)
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fatalf("%v", err)
		}
	} else {
		fmt.Printf("creation avoidance: %s/%s (%d/%d automaton states doomed; trace %.2f MB, %d segments; see DESIGN.md)\n",
			ar.Bench, ar.Prop, ar.DoomedStates, ar.TotalStates, ar.TraceMB, ar.Segments)
		fmt.Printf("%-24s %10s %10s %10s %10s %9s %8s %10s\n",
			"configuration", "created", "avoided", "peak-live", "verdicts", "cut", "sec", "identical")
		for _, run := range ar.Runs {
			cut := "-"
			if run.Avoid == "enforce" {
				cut = fmt.Sprintf("%.1f%%", run.CreatedCut*100)
			}
			fmt.Printf("%-24s %10d %10d %10d %10d %9s %8.3f %10v\n",
				run.Label, run.Stats.Created, run.Stats.Avoided, run.Stats.PeakLive,
				run.Stats.GoalVerdicts, cut, run.Sec, run.Identical)
		}
		fmt.Printf("  creation sites (profiled over the recorded trace):\n")
		fmt.Printf("  %-12s %9s %9s %12s %12s %8s %8s\n",
			"event", "creation", "static", "created", "restepped", "goaled", "profile")
		for _, s := range ar.Sites {
			fmt.Printf("  %-12s %9v %9v %12d %12d %8d %8v\n",
				s.Event, s.Creation, s.StaticGuard, s.Created, s.Restepped, s.ReachedGoal, s.ProfileGuard)
		}
	}
	if bad := ar.Verify(); len(bad) > 0 {
		for _, b := range bad {
			fmt.Fprintf(os.Stderr, "rvbench: %s\n", b)
		}
		fatalf("creation-avoidance tier failed verification")
	}
}

// runCluster runs the cluster comparison tier, prints its table, and
// archives the result as a grid whose Cluster section carries the
// measurements. A cluster run that does not settle identically to the
// single-node run is a hard failure; the speedup gate is opt-in via
// -min-speedup (single-core CI reports it without gating).
func runCluster(ccfg eval.ClusterConfig, cfg eval.Config, minSpeedup float64, jsonOut bool, outPath string) {
	cr, err := eval.RunCluster(ccfg)
	if err != nil {
		fatalf("%v", err)
	}
	res := &eval.Results{Config: cfg, Cluster: cr}
	writeOut(outPath, res)
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fatalf("%v", err)
		}
	} else {
		fmt.Printf("cluster tier: %s/%s over %d in-process nodes (pivot-hashed; see DESIGN.md)\n",
			cr.Bench, cr.Prop, cr.Nodes)
		fmt.Printf("%-12s %12s %8s %12s %10s\n", "session", "events/s", "sec", "verdicts", "identical")
		fmt.Printf("%-12s %12.0f %8.3f %12d %10s\n", "single", cr.SingleRate, cr.SingleSec, cr.Verdicts, "-")
		fmt.Printf("%-12s %12.0f %8.3f %12d %10v\n", fmt.Sprintf("cluster×%d", cr.Nodes), cr.ClusterRate, cr.ClusterSec, cr.Verdicts, cr.Identical)
		fmt.Printf("  speedup %.2fx over %d events\n", cr.Speedup, cr.Events)
	}
	if !cr.Identical {
		fatalf("cluster run diverged from the single-node run")
	}
	if minSpeedup > 0 && cr.Speedup < minSpeedup {
		fatalf("cluster speedup %.2fx below -min-speedup %.2f", cr.Speedup, minSpeedup)
	}
}

// compareBaseline reruns a baseline's configuration and fails (exit 1) on
// counter divergence, micro allocs/event regression, or runtime regression
// beyond the tolerance. The baseline's grid shape (scale, benchmarks,
// properties, systems, shards) is authoritative; the current -timeout and
// -remote still apply. With outPath the current run is archived either way.
func compareBaseline(path string, tol float64, cur eval.Config, outPath string, progress io.Writer) {
	raw, err := os.ReadFile(path)
	if err != nil {
		fatalf("%v", err)
	}
	var base eval.Results
	if err := json.Unmarshal(raw, &base); err != nil {
		fatalf("parsing %s: %v", path, err)
	}
	cfg := base.Config
	cfg.Timeout = cur.Timeout
	cfg.Remote = cur.Remote
	res, err := eval.Run(cfg, progress)
	if err != nil {
		fatalf("%v", err)
	}
	// A baseline carrying the creation-avoidance section reruns that tier
	// too, at the recorded scale, so Compare can gate the avoided-creation
	// counters of every guard configuration.
	if ba := base.Avoid; ba != nil {
		res.Avoid, err = eval.RunAvoid(eval.AvoidConfig{Scale: ba.Scale, Bench: ba.Bench, Prop: ba.Prop})
		if err != nil {
			fatalf("%v", err)
		}
	}
	writeOut(outPath, res)
	bad := eval.Compare(&base, res, tol)
	if len(bad) > 0 {
		fmt.Fprintf(os.Stderr, "rvbench: %d regression(s) against %s:\n", len(bad), path)
		for _, b := range bad {
			fmt.Fprintf(os.Stderr, "  %s\n", b)
		}
		os.Exit(1)
	}
	fmt.Printf("rvbench: no regressions against %s (%d benchmarks × %d properties, tolerance %.0f%%)\n",
		path, len(cfg.Benchmarks), len(cfg.Properties), tol*100)
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rvbench: "+format+"\n", args...)
	os.Exit(1)
}
