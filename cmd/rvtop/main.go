// Command rvtop is a live terminal view of a monitoring server: it polls
// the /statusz document that rvserve -metrics serves and renders a
// refreshing per-tenant and per-shard table — monitors live, event
// throughput, GC reclaim rate, credit stalls, mailbox depths — the
// paper's Figure 10 counters as an operational dashboard.
//
// Usage:
//
//	rvtop [-interval 2s] [-once] host:port
//
// The address is the server's -metrics listener. Rates (ev/s, batch/s)
// are derived from successive polls; -once prints a single snapshot
// (cumulative counters only) and exits, for scripts and smoke tests.
//
// rvtop speaks only the public JSON contract of /statusz; it mirrors the
// document shape locally rather than importing server internals.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strings"
	"text/tabwriter"
	"time"
)

// The /statusz document, mirrored from its stable JSON field names.
type statusz struct {
	UptimeSec float64         `json:"uptime_sec"`
	Active    int             `json:"active_sessions"`
	Total     uint64          `json:"total_sessions"`
	Events    uint64          `json:"events"`
	Verdicts  uint64          `json:"verdicts"`
	Sessions  []sessionStatus `json:"sessions"`
	Metrics   []metricFamily  `json:"metrics"`
}

type sessionStatus struct {
	ID        uint64  `json:"id"`
	Tenant    string  `json:"tenant"`
	Shards    int     `json:"shards"`
	Window    int     `json:"window"`
	Events    uint64  `json:"events"`
	Stalls    uint64  `json:"stalls"`
	StallSec  float64 `json:"stall_sec"`
	UptimeSec float64 `json:"uptime_sec"`
}

type metricFamily struct {
	Name   string         `json:"name"`
	Kind   string         `json:"kind"`
	Label  string         `json:"label"`
	Series []metricSeries `json:"series"`
}

type metricSeries struct {
	Label string  `json:"label"`
	Value float64 `json:"value"`
	Count uint64  `json:"count"`
}

// values flattens one family into label → value.
func (st *statusz) values(family string) map[string]float64 {
	out := map[string]float64{}
	for _, f := range st.Metrics {
		if f.Name != family {
			continue
		}
		for _, s := range f.Series {
			out[s.Label] = s.Value
		}
	}
	return out
}

// sample is one poll: the document plus its arrival time, for rates.
type sample struct {
	st statusz
	at time.Time
}

func poll(url string) (sample, error) {
	resp, err := http.Get(url)
	if err != nil {
		return sample{}, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return sample{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return sample{}, fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	var s sample
	if err := json.Unmarshal(body, &s.st); err != nil {
		return sample{}, fmt.Errorf("parse /statusz: %w", err)
	}
	s.at = time.Now()
	return s, nil
}

// rate is (cur-prev)/dt for one label of one family, or NaN on the first
// sample (rendered as "-").
func rate(cur, prev *sample, family, label string) float64 {
	if prev == nil {
		return math.NaN()
	}
	dt := cur.at.Sub(prev.at).Seconds()
	if dt <= 0 {
		return math.NaN()
	}
	return (cur.st.values(family)[label] - prev.st.values(family)[label]) / dt
}

func fmtRate(v float64) string {
	if math.IsNaN(v) { // no previous sample yet
		return "-"
	}
	return fmt.Sprintf("%.1f", v)
}

func render(w io.Writer, url string, cur sample, prev *sample) {
	st := &cur.st
	fmt.Fprintf(w, "rvtop — %s  up %s  sessions %d/%d  events %d  verdicts %d\n\n",
		url, (time.Duration(st.UptimeSec) * time.Second).String(),
		st.Active, st.Total, st.Events, st.Verdicts)

	// Tenant rows: every tenant with an engine or server series.
	live := st.values("rv_engine_monitors_live")
	peak := st.values("rv_engine_monitors_peak_live")
	created := st.values("rv_engine_monitors_created_total")
	collected := st.values("rv_engine_monitors_collected_total")
	stalls := st.values("rv_server_credit_stalls_total")
	tenants := map[string]bool{}
	for l := range live {
		tenants[l] = true
	}
	for l := range st.values("rv_server_events_total") {
		tenants[l] = true
	}
	names := make([]string, 0, len(tenants))
	for l := range tenants {
		names = append(names, l)
	}
	sort.Strings(names)

	tw := tabwriter.NewWriter(w, 2, 4, 3, ' ', 0)
	fmt.Fprintln(tw, "TENANT\tLIVE\tPEAK\tEV/S\tCREATED\tCOLLECTED\tRECLAIM\tSTALLS")
	for _, tn := range names {
		reclaim := "-"
		if created[tn] > 0 {
			reclaim = fmt.Sprintf("%.1f%%", 100*collected[tn]/created[tn])
		}
		fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%s\t%.0f\t%.0f\t%s\t%.0f\n",
			tn, live[tn], peak[tn],
			fmtRate(rate(&cur, prev, "rv_server_events_total", tn)),
			created[tn], collected[tn], reclaim, stalls[tn])
	}
	tw.Flush()

	// Shard rows, when any session runs a sharded backend.
	depth := st.values("rv_shard_mailbox_depth")
	if len(depth) > 0 {
		shards := make([]string, 0, len(depth))
		for l := range depth {
			shards = append(shards, l)
		}
		sort.Strings(shards)
		fmt.Fprintln(w)
		tw = tabwriter.NewWriter(w, 2, 4, 3, ' ', 0)
		fmt.Fprintln(tw, "  SHARD\tDEPTH\tBATCH/S\tEV/S")
		for _, sh := range shards {
			fmt.Fprintf(tw, "  %s\t%.0f\t%s\t%s\n", sh, depth[sh],
				fmtRate(rate(&cur, prev, "rv_shard_batches_total", sh)),
				fmtRate(rate(&cur, prev, "rv_shard_batch_events_total", sh)))
		}
		tw.Flush()
	}

	// Per-session detail.
	if len(st.Sessions) > 0 {
		fmt.Fprintln(w)
		tw = tabwriter.NewWriter(w, 2, 4, 3, ' ', 0)
		fmt.Fprintln(tw, "  SESSION\tTENANT\tSHARDS\tWINDOW\tEVENTS\tSTALLS\tSTALL-SEC\tUP")
		for _, s := range st.Sessions {
			fmt.Fprintf(tw, "  %d\t%s\t%d\t%d\t%d\t%d\t%.2f\t%s\n",
				s.ID, s.Tenant, s.Shards, s.Window, s.Events, s.Stalls, s.StallSec,
				(time.Duration(s.UptimeSec) * time.Second).String())
		}
		tw.Flush()
	}
}

func main() {
	var (
		interval = flag.Duration("interval", 2*time.Second, "poll interval")
		once     = flag.Bool("once", false, "print one snapshot and exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: rvtop [-interval 2s] [-once] host:port\n\n"+
			"Polls the /statusz endpoint of an rvserve -metrics listener.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	addr := flag.Arg(0)
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	url := strings.TrimRight(addr, "/") + "/statusz"

	cur, err := poll(url)
	if err != nil {
		fatalf("%v", err)
	}
	if *once {
		render(os.Stdout, url, cur, nil)
		return
	}
	prev := cur
	for {
		time.Sleep(*interval)
		cur, err = poll(url)
		if err != nil {
			// Transient scrape errors (a restarting server) show in place
			// of the table; the loop keeps polling.
			fmt.Printf("\x1b[2J\x1b[Hrvtop — %s: %v\n", url, err)
			continue
		}
		fmt.Print("\x1b[2J\x1b[H") // clear and home, a fresh frame
		render(os.Stdout, url, cur, &prev)
		prev = cur
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rvtop: "+format+"\n", args...)
	os.Exit(1)
}
