// Command rvmon compiles an .rv specification and monitors a parametric
// event trace against it, printing handler output as verdicts are reached.
//
// Usage:
//
//	rvmon -spec hasnext.rv [-trace trace.txt] [-gc coenable|alldead|none]
//	      [-backend seq|shard|remote|cluster] [-shards N] [-remote addr]
//	      [-nodes a:7472,b:7472] [-record run.rvt] [-stats]
//
// -record taps the monitored stream into a persistent trace (the segment
// format cmd/rvquery replays), so the run can be re-checked later against
// any property over the same events. It requires a spec defining a single
// property (one trace records one stream).
//
// -backend selects the monitoring backend: the in-process sequential
// engine (seq, the default), the sharded concurrent runtime (shard, sized
// by -shards), a session against an rvserve monitoring server (remote,
// addressed by -remote; the spec must define a single property, which
// both ends compile and verify in the handshake), or one logical session
// spread across a cluster of rvserve nodes (cluster, addressed by -nodes;
// slices are placed by pivot hash). Left unset, the backend is inferred
// from the modifier flags. Trace semantics are identical on every backend
// — the runtime is barriered before every "free" line so deaths land at
// their trace positions, exactly as the sequential engine observes them.
//
// The trace is read from the file or stdin, one step per line:
//
//	<event> <object>...   dispatch a parametric event, e.g. "next i1"
//	free <object>         the object is garbage collected
//	# comment             ignored
//
// Objects are named symbolically; each name denotes one simulated heap
// object, allocated on first mention.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"rvgo"
	"rvgo/internal/cliutil"
	"rvgo/spec"
)

// engine is one monitor plus its per-event emitter cache: every trace
// line after the first with a given event name dispatches through a
// pre-resolved emitter (the façade's hot path), not a name lookup.
type engine struct {
	m        *rvgo.Monitor
	name     string
	emitters map[string]*rvgo.Emitter // nil entry: event unknown to this spec
}

func (e *engine) emitter(event string) *rvgo.Emitter {
	em, ok := e.emitters[event]
	if !ok {
		if resolved, err := e.m.Event(event); err == nil {
			em = &resolved
		}
		e.emitters[event] = em
	}
	return em
}

func main() {
	var (
		specPath  = flag.String("spec", "", "path to the .rv specification (required)")
		tracePath = flag.String("trace", "", "path to the trace file (default: stdin)")
		gcMode    = flag.String("gc", "coenable", "monitor GC policy: coenable, alldead, none")
		backendFl = flag.String("backend", "", "monitoring backend: seq, shard, remote, cluster (default: inferred from -shards/-remote/-nodes)")
		shards    = flag.Int("shards", 1, "shard count for -backend shard")
		remoteFl  = flag.String("remote", "", "rvserve address for -backend remote")
		nodesFl   = flag.String("nodes", "", "comma-separated rvserve node addresses for -backend cluster")
		record    = flag.String("record", "", "record the monitored stream to this trace file (rvquery replays it)")
		stats     = flag.Bool("stats", false, "print monitoring statistics at the end")
	)
	flag.Parse()
	if *specPath == "" {
		fatalf("missing -spec")
	}
	src, err := os.ReadFile(*specPath)
	if err != nil {
		fatalf("%v", err)
	}
	specs, err := spec.Parse(string(src))
	if err != nil {
		fatalf("%v", err)
	}
	gc, err := cliutil.ParseGC(*gcMode)
	if err != nil {
		fatalf("%v", err)
	}
	nodes := cliutil.SplitNodes(*nodesFl)
	backend, err := cliutil.ParseBackend(*backendFl, *shards, *remoteFl, nodes)
	if err != nil {
		fatalf("%v", err)
	}
	var recordOpts []rvgo.Option
	if *record != "" {
		if len(specs) > 1 {
			fatalf("-record needs a spec defining a single property (%s defines %d)", *specPath, len(specs))
		}
		path, err := cliutil.ValidateRecordPath("-record", *record, *tracePath, *specPath)
		if err != nil {
			fatalf("%v", err)
		}
		recordOpts = append(recordOpts, rvgo.WithRecord(path))
	}

	var engines []*engine
	for _, sp := range specs {
		sp := sp
		handlers := sp.Handlers()
		m, err := cliutil.NewMonitor(sp, backend, *shards, *remoteFl, nodes,
			append(recordOpts,
				rvgo.WithGC(gc),
				rvgo.WithVerdictHandler(func(v rvgo.Verdict) {
					fmt.Printf("%s: %s at %s\n", sp.Name(), v.Cat, v.Inst.Format(sp.Params()))
					if body, ok := handlers[string(v.Cat)]; ok {
						spec.RunHandler(body, func(line string) { fmt.Println("  " + line) })
					}
				}))...)
		if err != nil {
			fatalf("%v", err)
		}
		engines = append(engines, &engine{m: m, name: sp.Name(), emitters: map[string]*rvgo.Emitter{}})
	}

	var in io.Reader = os.Stdin
	if *tracePath != "" {
		f, err := os.Open(*tracePath)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		in = f
	}

	h := rvgo.NewHeap()
	objects := map[string]*rvgo.Object{}
	obj := func(name string) *rvgo.Object {
		if o, ok := objects[name]; ok {
			return o
		}
		o := h.Alloc(name)
		objects[name] = o
		return o
	}

	sc := bufio.NewScanner(in)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		fields := strings.Fields(strings.TrimSpace(sc.Text()))
		if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
			continue
		}
		if fields[0] == "free" {
			// The backends position the deaths behind everything
			// dispatched so far (one barrier per line for asynchronous
			// backends), then the heap applies them.
			var refs []rvgo.Ref
			var objs []*rvgo.Object
			for _, name := range fields[1:] {
				if o, ok := objects[name]; ok {
					refs = append(refs, o)
					objs = append(objs, o)
				}
			}
			if len(refs) > 0 {
				for _, e := range engines {
					e.m.Free(refs...)
				}
				for _, o := range objs {
					h.Free(o)
				}
			}
			continue
		}
		event := fields[0]
		dispatched := false
		for _, e := range engines {
			em := e.emitter(event)
			if em == nil {
				continue
			}
			dispatched = true
			if want := em.Arity(); len(fields)-1 != want {
				fatalf("line %d: event %q takes %d objects, got %d", lineNo, event, want, len(fields)-1)
			}
			vals := make([]rvgo.Ref, 0, len(fields)-1)
			for _, name := range fields[1:] {
				o := obj(name)
				if !o.Alive() {
					fatalf("line %d: object %q was freed", lineNo, name)
				}
				vals = append(vals, o)
			}
			em.Emit(vals...)
		}
		if !dispatched {
			fatalf("line %d: unknown event %q", lineNo, event)
		}
	}
	if err := sc.Err(); err != nil {
		fatalf("%v", err)
	}

	if *stats {
		for _, e := range engines {
			e.m.Flush()
			st := e.m.Stats()
			fmt.Printf("%s: events=%d created=%d flagged=%d collected=%d verdicts=%d\n",
				e.name, st.Events, st.Created, st.Flagged, st.Collected, st.GoalVerdicts)
		}
	}
	for _, e := range engines {
		// Close before the error check: it seals the recorded trace, and a
		// failure of that final write must still be fatal.
		e.m.Close()
		if err := e.m.Err(); err != nil {
			fatalf("%v", err)
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rvmon: "+format+"\n", args...)
	os.Exit(1)
}
