// Command rvmon compiles an .rv specification and monitors a parametric
// event trace against it, printing handler output as verdicts are reached.
//
// Usage:
//
//	rvmon -spec hasnext.rv [-trace trace.txt] [-gc coenable|alldead|none]
//	      [-shards N] [-stats]
//
// -shards N > 1 monitors on the sharded concurrent runtime
// (internal/shard); trace semantics are unchanged — the runtime is
// barriered before every "free" line so deaths land at their trace
// positions, exactly as the sequential engine observes them.
//
// The trace is read from the file or stdin, one step per line:
//
//	<event> <object>...   dispatch a parametric event, e.g. "next i1"
//	free <object>         the object is garbage collected
//	# comment             ignored
//
// Objects are named symbolically; each name denotes one simulated heap
// object, allocated on first mention.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"rvgo/internal/cliutil"
	"rvgo/internal/heap"
	"rvgo/internal/monitor"
	"rvgo/internal/spec"
)

func main() {
	var (
		specPath  = flag.String("spec", "", "path to the .rv specification (required)")
		tracePath = flag.String("trace", "", "path to the trace file (default: stdin)")
		gcMode    = flag.String("gc", "coenable", "monitor GC policy: coenable, alldead, none")
		shards    = flag.Int("shards", 1, "1 = sequential engine, >1 = sharded runtime")
		stats     = flag.Bool("stats", false, "print monitoring statistics at the end")
	)
	flag.Parse()
	if *specPath == "" {
		fatalf("missing -spec")
	}
	src, err := os.ReadFile(*specPath)
	if err != nil {
		fatalf("%v", err)
	}
	prop, err := spec.Parse(string(src))
	if err != nil {
		fatalf("%v", err)
	}
	compiled, err := prop.Compile()
	if err != nil {
		fatalf("%v", err)
	}

	gc, err := cliutil.ParseGC(*gcMode)
	if err != nil {
		fatalf("%v", err)
	}
	if err := cliutil.ValidateShards(*shards); err != nil {
		fatalf("%v", err)
	}

	var engines []monitor.Runtime
	for _, c := range compiled {
		c := c
		opts := monitor.Options{
			GC:       gc,
			Creation: monitor.CreateEnable,
			OnVerdict: func(v monitor.Verdict) {
				fmt.Printf("%s: %s at %s\n", c.Spec.Name, v.Cat, v.Inst.Format(c.Spec.Params))
				if body, ok := c.Handlers[v.Cat]; ok {
					spec.RunHandler(body, func(line string) { fmt.Println("  " + line) })
				}
			},
		}
		eng, err := cliutil.NewRuntime(c.Spec, opts, *shards)
		if err != nil {
			fatalf("%v", err)
		}
		engines = append(engines, eng)
	}

	var in io.Reader = os.Stdin
	if *tracePath != "" {
		f, err := os.Open(*tracePath)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		in = f
	}

	h := heap.New()
	objects := map[string]*heap.Object{}
	obj := func(name string) *heap.Object {
		if o, ok := objects[name]; ok {
			return o
		}
		o := h.Alloc(name)
		objects[name] = o
		return o
	}

	sc := bufio.NewScanner(in)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		fields := strings.Fields(strings.TrimSpace(sc.Text()))
		if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
			continue
		}
		if fields[0] == "free" {
			// The runtimes position the deaths behind everything
			// dispatched so far (one barrier per line for asynchronous
			// backends), then the heap applies them.
			var refs []heap.Ref
			var objs []*heap.Object
			for _, name := range fields[1:] {
				if o, ok := objects[name]; ok {
					refs = append(refs, o)
					objs = append(objs, o)
				}
			}
			if len(refs) > 0 {
				for _, eng := range engines {
					eng.Free(refs...)
				}
				for _, o := range objs {
					h.Free(o)
				}
			}
			continue
		}
		event := fields[0]
		dispatched := false
		for _, eng := range engines {
			sym, ok := eng.Spec().Symbol(event)
			if !ok {
				continue
			}
			dispatched = true
			want := eng.Spec().Events[sym].Params.Count()
			if len(fields)-1 != want {
				fatalf("line %d: event %q takes %d objects, got %d", lineNo, event, want, len(fields)-1)
			}
			vals := make([]heap.Ref, 0, want)
			for _, name := range fields[1:] {
				o := obj(name)
				if !o.Alive() {
					fatalf("line %d: object %q was freed", lineNo, name)
				}
				vals = append(vals, o)
			}
			eng.Emit(sym, vals...)
		}
		if !dispatched {
			fatalf("line %d: unknown event %q", lineNo, event)
		}
	}
	if err := sc.Err(); err != nil {
		fatalf("%v", err)
	}

	if *stats {
		for _, eng := range engines {
			eng.Flush()
			st := eng.Stats()
			fmt.Printf("%s: events=%d created=%d flagged=%d collected=%d verdicts=%d\n",
				eng.Spec().Name, st.Events, st.Created, st.Flagged, st.Collected, st.GoalVerdicts)
		}
	}
	for _, eng := range engines {
		eng.Close()
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rvmon: "+format+"\n", args...)
	os.Exit(1)
}
